//! Design-space exploration over the paper's Table III/IV benchmarks.
//!
//! For each selected benchmark design the feedback-guided optimize loop
//! runs at several resource budgets; every accepted round is
//! oracle-refereed (the paper's theorems re-proven from the edited graph
//! alone), and the explored latency-vs-control-cost points are folded
//! into a Pareto front. A custom `main` exports the fronts to
//! `BENCH_optimize.json` and asserts that the exploration produced at
//! least two distinct Pareto points across the suite.

use criterion::{BenchmarkId, Criterion, SummaryWriter};

use rsched_engine::{OptimizeConfig, Optimizer, Session};
use rsched_graph::ConstraintGraph;
use rsched_oracle::verify;

/// The Table III/IV designs the exploration sweeps.
const DESIGNS: [&str; 3] = ["gcd", "frisc", "DCT phase A"];
const BUDGETS: [usize; 3] = [1, 2, 3];

fn smoke() -> bool {
    std::env::var("RSCHED_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Picks the richest schedulable graph of a benchmark's hierarchy: the
/// one with the most operations that opens as a warm session.
fn exploration_graph(design: &str) -> ConstraintGraph {
    let scheduled = rsched_bench::schedule_benchmark(design);
    scheduled
        .graph_schedules()
        .iter()
        .filter(|gs| Session::open(gs.lowered.graph.clone()).is_ok_and(|s| s.schedule().is_some()))
        .max_by_key(|gs| gs.lowered.graph.operation_ids().count())
        .unwrap_or_else(|| panic!("benchmark '{design}' has no schedulable graph"))
        .lowered
        .graph
        .clone()
}

/// One budget's exploration outcome.
struct Exploration {
    accepted: usize,
    refereed: usize,
    explored: Vec<(u64, u64)>,
}

/// Runs the optimize loop at one budget, oracle-refereeing every
/// accepted round, and returns the explored (latency, control) points.
fn explore(graph: &ConstraintGraph, budget: usize, max_rounds: usize) -> Exploration {
    let session = Session::open(graph.clone()).expect("benchmark graph opens");
    let config = OptimizeConfig {
        budget,
        slack_threshold: 1,
        max_rounds,
        ..OptimizeConfig::default()
    };
    let mut optimizer = Optimizer::new(session, config).expect("benchmark graph is scheduled");
    let mut refereed = 0usize;
    while let Some(round) = optimizer.step().expect("benchmark rounds never fail") {
        if !round.accepted {
            continue;
        }
        let s = optimizer.session();
        let omega = s.schedule().expect("accepted round is scheduled");
        let report = verify(s.graph(), omega);
        assert!(report.is_ok(), "oracle refuted an accepted round: {report}");
        refereed += 1;
    }
    let report = optimizer.report();
    Exploration {
        accepted: report.accepted_rounds,
        refereed,
        explored: report.explored_points(),
    }
}

/// Non-dominated (minimize latency, minimize control) subset of a point
/// cloud, deduplicated and sorted.
fn pareto(points: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut front: Vec<(u64, u64)> = Vec::new();
    for &(l, c) in points {
        if points
            .iter()
            .any(|&(ol, oc)| (ol <= l && oc < c) || (ol < l && oc <= c))
        {
            continue;
        }
        if !front.contains(&(l, c)) {
            front.push((l, c));
        }
    }
    front.sort_unstable();
    front
}

fn main() {
    let smoke = smoke();
    let (samples, warm_ms, measure_ms, max_rounds) = if smoke {
        (2, 5, 20, 4)
    } else {
        (10, 100, 400, 8)
    };
    let mut criterion = Criterion::default()
        .sample_size(samples)
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .measurement_time(std::time::Duration::from_millis(measure_ms));

    let mut writer = SummaryWriter::new("optimize").threads(1);
    let mut suite_points: Vec<(u64, u64)> = Vec::new();
    let mut total_accepted = 0usize;
    let mut total_refereed = 0usize;

    let mut group = criterion.benchmark_group("optimize");
    for design in DESIGNS {
        let graph = exploration_graph(design);
        let slug = design.replace(' ', "_");

        // Wall-clock reference: one full exploration at the unit budget.
        group.bench_with_input(BenchmarkId::new("loop", &slug), &graph, |b, g| {
            b.iter(|| explore(g, 1, max_rounds).accepted)
        });

        // The front itself: sweep the budgets, union the explored
        // points, keep the non-dominated subset.
        let mut explored: Vec<(u64, u64)> = Vec::new();
        for budget in BUDGETS {
            let run = explore(&graph, budget, max_rounds);
            assert_eq!(
                run.accepted, run.refereed,
                "{design}: every accepted round must be oracle-refereed"
            );
            total_accepted += run.accepted;
            total_refereed += run.refereed;
            explored.extend(run.explored);
        }
        let front = pareto(&explored);
        println!(
            "{design}: {} explored point(s), pareto front {:?}",
            explored.len(),
            front
        );
        writer = writer
            .int(format!("{slug}_explored"), explored.len() as i64)
            .int(format!("{slug}_pareto_points"), front.len() as i64);
        for (i, (latency, control)) in front.iter().enumerate() {
            writer = writer
                .int(format!("{slug}_pareto{i}_latency"), *latency as i64)
                .int(format!("{slug}_pareto{i}_control"), *control as i64);
        }
        suite_points.extend(front);
    }
    group.finish();

    let suite_front = pareto(&suite_points);
    let mut distinct = suite_points.clone();
    distinct.sort_unstable();
    distinct.dedup();
    println!(
        "suite: {} accepted round(s), all oracle-refereed; {} distinct pareto point(s) \
         across {} design(s) (summary: BENCH_optimize.json)",
        total_accepted,
        distinct.len(),
        DESIGNS.len()
    );

    let results = criterion.take_results();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optimize.json");
    writer
        .int("designs", DESIGNS.len() as i64)
        .int("budgets", BUDGETS.len() as i64)
        .int("accepted_rounds", total_accepted as i64)
        .int("refereed_rounds", total_refereed as i64)
        .int("distinct_pareto_points", distinct.len() as i64)
        .int("suite_front", suite_front.len() as i64)
        .int("smoke", i64::from(smoke))
        .write(path, &results)
        .expect("write BENCH_optimize.json");

    assert!(
        distinct.len() >= 2,
        "the exploration must record at least two distinct Pareto points \
         (got {:?})",
        distinct
    );
}
