//! Canonical-form schedule cache under a skewed request stream.
//!
//! The cache earns its keep when the same *structure* arrives repeatedly
//! under different labels — regenerated netlists, per-client copies of a
//! shared template, replayed designs. This bench reproduces that shape:
//!
//! - a universe of distinct *cascade* designs — a dependency chain whose
//!   tail carries tight max constraints, so every cold schedule pays the
//!   full `|E_b| + 1` iteration bound (`links + 1` kernel iterations)
//!   rather than converging in one pass;
//! - a Zipf-distributed request stream over that universe (weight
//!   `1/(rank+1)`), with every request relabeled — fresh vertex names and
//!   a shuffled insertion order — so each hit pays the entire
//!   canonicalize → probe → remap path, never a shortcut;
//! - interleaved cold reference runs: every eighth request also times a
//!   plain `schedule_threaded` on the *same relabeled graph*, so the
//!   hit/cold comparison sees identical machine conditions.
//!
//! A custom `main` exports hit rate, p50 hit latency, p50 cold latency
//! and their ratio to `BENCH_cache.json`, and asserts two floors outside
//! smoke mode: the Zipf stream hits at least 50% of the time, and a p50
//! hit is at least 10x faster than a p50 cold schedule.

use criterion::{BenchmarkId, Criterion, SummaryWriter};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsched_cache::{schedule_cached, ScheduleCache};
use rsched_core::schedule_threaded;
use rsched_designs::cascade::{build_cascade as build, Cascade};

fn smoke() -> bool {
    std::env::var("RSCHED_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Cumulative fixed-point Zipf weights over `n` ranks: `w_r = K/(r+1)`.
fn zipf_cumulative(n: usize) -> Vec<u64> {
    let mut acc = 0u64;
    (0..n as u64)
        .map(|r| {
            acc += 720_720 / (r + 1); // lcm(1..=16): exact for small ranks
            acc
        })
        .collect()
}

fn zipf_sample(rng: &mut StdRng, cumulative: &[u64]) -> usize {
    let u = rng.gen_range(0..*cumulative.last().expect("non-empty universe"));
    cumulative.partition_point(|&c| c <= u)
}

fn percentile_ns(mut samples: Vec<u128>, pct: usize) -> f64 {
    assert!(!samples.is_empty(), "no samples for percentile");
    samples.sort_unstable();
    samples[(samples.len() - 1) * pct / 100] as f64
}

/// Outcome of the Zipf stream: per-request hit/miss latencies plus the
/// interleaved cold reference samples.
struct StreamResult {
    hit_ns: Vec<u128>,
    miss_ns: Vec<u128>,
    cold_ns: Vec<u128>,
    stats: rsched_cache::CacheStats,
}

fn run_stream(universe: &[Cascade], requests: usize, capacity: usize) -> StreamResult {
    let cache = ScheduleCache::new(capacity);
    let cumulative = zipf_cumulative(universe.len());
    let mut rng = StdRng::seed_from_u64(0xcac4e);
    let (mut hit_ns, mut miss_ns, mut cold_ns) = (Vec::new(), Vec::new(), Vec::new());
    for req in 0..requests {
        let design = universe[zipf_sample(&mut rng, &cumulative)];
        let graph = build(design, req as u64 + 1);
        let start = std::time::Instant::now();
        let (result, hit) = schedule_cached(&cache, &graph, 1).expect("cascade designs schedule");
        let elapsed = start.elapsed().as_nanos();
        if hit { &mut hit_ns } else { &mut miss_ns }.push(elapsed);
        std::hint::black_box(&result);
        // Interleaved cold reference on the very same relabeled graph.
        if req % 8 == 0 {
            let start = std::time::Instant::now();
            let cold = schedule_threaded(&graph, 1).expect("cascade designs schedule");
            cold_ns.push(start.elapsed().as_nanos());
            assert_eq!(cold, result, "cache transparency broken in bench");
        }
    }
    StreamResult {
        hit_ns,
        miss_ns,
        cold_ns,
        stats: cache.stats(),
    }
}

/// Criterion groups for absolute reference points: one cold schedule,
/// one full hit (canonicalize + probe + remap), one key derivation.
fn reference_points(c: &mut Criterion, design: Cascade) {
    let graph = build(design, 0);
    let relabeled = build(design, 7);
    let warm = ScheduleCache::new(64);
    schedule_cached(&warm, &graph, 1).expect("cascade design schedules");
    let mut group = c.benchmark_group("cache");
    group.bench_with_input(
        BenchmarkId::new("cold_schedule", design.n),
        &graph,
        |b, g| b.iter(|| schedule_threaded(g, 1).expect("cascade design schedules")),
    );
    group.bench_with_input(BenchmarkId::new("hit", design.n), &relabeled, |b, g| {
        b.iter(|| {
            let (result, hit) = schedule_cached(&warm, g, 1).expect("cascade design schedules");
            assert!(hit, "warmed cache must hit");
            result
        })
    });
    group.bench_with_input(
        BenchmarkId::new("canonical_key", design.n),
        &relabeled,
        |b, g| b.iter(|| g.canonical_key()),
    );
    group.finish();
}

fn main() {
    let smoke = smoke();
    let (samples, warm_ms, measure_ms) = if smoke { (2, 5, 20) } else { (10, 100, 400) };
    let mut criterion = Criterion::default()
        .sample_size(samples)
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .measurement_time(std::time::Duration::from_millis(measure_ms));

    let (n, links, universe_size, requests) = if smoke {
        (60, 50, 8, 48)
    } else {
        (200, 190, 64, 480)
    };
    let universe: Vec<Cascade> = (0..universe_size as u64)
        .map(|salt| Cascade { n, links, salt })
        .collect();

    reference_points(&mut criterion, universe[0]);
    // Capacity comfortably above the universe: the floors below measure
    // canonicalization quality and Zipf skew, not eviction policy.
    let stream = run_stream(&universe, requests, universe_size * 2);

    let total = (stream.stats.hits + stream.stats.misses) as f64;
    let hit_rate = stream.stats.hits as f64 / total.max(1.0);
    let hit_p50_ns = percentile_ns(stream.hit_ns, 50);
    let miss_p50_ns = percentile_ns(stream.miss_ns, 50);
    let cold_p50_ns = percentile_ns(stream.cold_ns, 50);
    let speedup = cold_p50_ns / hit_p50_ns.max(1.0);

    let results = criterion.take_results();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    SummaryWriter::new("cache")
        .threads(1)
        .metric("hit_rate", hit_rate)
        .metric("hit_p50_ns", hit_p50_ns)
        .metric("miss_p50_ns", miss_p50_ns)
        .metric("cold_p50_ns", cold_p50_ns)
        .metric("hit_speedup", speedup)
        .int("stream_requests", requests as i64)
        .int("universe", universe_size as i64)
        .int("evictions", stream.stats.evictions as i64)
        .int("smoke", i64::from(smoke))
        .write(path, &results)
        .expect("write BENCH_cache.json");
    println!(
        "zipf stream: {requests} requests over {universe_size} designs, hit rate {hit_rate:.3}; \
         p50 hit {:.1} us vs p50 cold {:.1} us ({speedup:.1}x; summary: BENCH_cache.json)",
        hit_p50_ns / 1e3,
        cold_p50_ns / 1e3,
    );
    if !smoke {
        assert!(
            hit_rate >= 0.5,
            "Zipf stream must hit at least half the time (measured {hit_rate:.3})"
        );
        assert!(
            speedup >= 10.0,
            "p50 hit must be at least 10x faster than a p50 cold schedule \
             (measured {speedup:.1}x)"
        );
    }
}
