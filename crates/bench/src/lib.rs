//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each table/figure has a binary (`cargo run --bin table3`, `fig10`, …)
//! that prints the paper's layout with measured values next to the
//! published ones; the Criterion benches under `benches/` cover the §VII
//! run-time claims and the ablations called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use rsched_designs::benchmarks::{all_benchmarks, Benchmark};
use rsched_sgraph::{schedule_design, AnchorStats, DesignSchedule};

/// One measured row of Table III / Table IV for a benchmark design.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Design name.
    pub name: &'static str,
    /// The measured hierarchy statistics.
    pub stats: AnchorStats,
    /// The paper's published numbers.
    pub paper: rsched_designs::benchmarks::PaperRow,
    /// Wall-clock seconds to schedule the whole hierarchy (lowering,
    /// well-posedness, redundancy removal, scheduling).
    pub seconds: f64,
}

/// Schedules every benchmark and collects its statistics.
///
/// # Panics
///
/// Panics if a bundled benchmark fails to schedule (a bug, covered by the
/// design tests).
pub fn measure_all() -> Vec<MeasuredRow> {
    all_benchmarks()
        .into_iter()
        .map(
            |Benchmark {
                 name,
                 design,
                 paper,
             }| {
                let start = Instant::now();
                let scheduled = schedule_design(&design).expect("benchmarks schedule cleanly");
                let seconds = start.elapsed().as_secs_f64();
                MeasuredRow {
                    name,
                    stats: scheduled.anchor_stats(),
                    paper,
                    seconds,
                }
            },
        )
        .collect()
}

/// Schedules one benchmark by name.
///
/// # Panics
///
/// Panics for unknown names or scheduling failures.
pub fn schedule_benchmark(name: &str) -> DesignSchedule {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
    schedule_design(&bench.design).expect("benchmarks schedule cleanly")
}

/// Renders Table III (full vs minimum anchor sets) with measured and
/// published values side by side.
pub fn render_table3(rows: &[MeasuredRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — comparison between full and minimum anchor sets"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>7} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
        "", "", "ΣA(v)", "", "avg", "", "ΣIR(v)", "", "avg", ""
    );
    let _ = writeln!(
        out,
        "{:<20} {:>7} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
        "design", "|A|/|V|", "meas", "paper", "meas", "paper", "meas", "paper", "meas", "paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for row in rows {
        let s = &row.stats;
        let p = &row.paper;
        let _ = writeln!(
            out,
            "{:<20} {:>7} | {:>5} {:>5} {:>5.2} {:>5.2} | {:>5} {:>5} {:>5.2} {:>5.2}",
            row.name,
            format!("{}/{}", s.n_anchors, s.n_vertices),
            s.total_full,
            p.total_full,
            s.avg_full(),
            p.total_full as f64 / p.vertices as f64,
            s.total_irredundant,
            p.total_min,
            s.avg_irredundant(),
            p.total_min as f64 / p.vertices as f64,
        );
    }
    out
}

/// Renders Table IV (max offsets) with measured and published values.
pub fn render_table4(rows: &[MeasuredRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table IV — maximum and sum-of-maximum offsets, full vs minimum anchor sets"
    );
    let _ = writeln!(
        out,
        "{:<20} | {:>4} {:>5} {:>6} {:>6} | {:>4} {:>5} {:>6} {:>6}",
        "", "full", "", "", "", "min", "", "", ""
    );
    let _ = writeln!(
        out,
        "{:<20} | {:>4} {:>5} {:>6} {:>6} | {:>4} {:>5} {:>6} {:>6}",
        "design", "max", "paper", "sum", "paper", "max", "paper", "sum", "paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));
    for row in rows {
        let s = &row.stats;
        let p = &row.paper;
        let _ = writeln!(
            out,
            "{:<20} | {:>4} {:>5} {:>6} {:>6} | {:>4} {:>5} {:>6} {:>6}",
            row.name,
            s.max_offset_full,
            p.max_full,
            s.sum_max_offsets_full,
            p.sum_full,
            s.max_offset_min,
            p.max_min,
            s.sum_max_offsets_min,
            p.sum_min,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_every_benchmark() {
        let rows = measure_all();
        assert_eq!(rows.len(), 8);
        let t3 = render_table3(&rows);
        let t4 = render_table4(&rows);
        for row in &rows {
            assert!(t3.contains(row.name));
            assert!(t4.contains(row.name));
        }
        // §VII claim: every design schedules in far under the paper's
        // 1–2 s (on 1990 hardware); allow generous slack for debug builds.
        for row in &rows {
            assert!(row.seconds < 5.0, "{} took {:.3}s", row.name, row.seconds);
        }
    }
}
