//! Regenerates Figs. 13/14: compiles the gcd HardwareC description, runs
//! the whole synthesis flow, and simulates it, verifying that x is
//! sampled exactly one clock cycle after y for every restart delay.

use rsched_ctrl::{generate, ControlStyle};
use rsched_designs::benchmarks::gcd_from_hardwarec;
use rsched_sgraph::schedule_design;
use rsched_sim::{DelaySource, Simulator, Waveform};

fn main() {
    println!(
        "Fig. 13 — HardwareC source:\n{}",
        rsched_designs::GCD_HARDWAREC
    );
    let compiled = gcd_from_hardwarec();
    let scheduled = schedule_design(&compiled.design).expect("gcd schedules");
    let root = compiled.design.root().expect("root set");
    let gs = scheduled.graph_schedule(root);

    println!("relative schedule of the root graph:");
    for v in gs.lowered.graph.vertex_ids() {
        let offs: Vec<String> = gs
            .schedule
            .offsets_of(v)
            .map(|(a, o)| format!("σ_{}={o}", gs.lowered.graph.vertex(a).name()))
            .collect();
        println!(
            "  {:<14} [{}]",
            gs.lowered.graph.vertex(v).name(),
            offs.join(", ")
        );
    }

    let unit = generate(
        &gs.lowered.graph,
        &gs.schedule_ir,
        ControlStyle::ShiftRegister,
    );
    println!(
        "\ngenerated control (irredundant anchors):\n{}",
        unit.describe()
    );

    let a = compiled.tag("a").expect("tag a");
    let b = compiled.tag("b").expect("tag b");
    let (va, vb) = (
        gs.lowered.op_vertices[a.op.index()],
        gs.lowered.op_vertices[b.op.index()],
    );

    println!("Fig. 14 — simulation under random restart/iteration delays:");
    for seed in [1u64, 7, 42] {
        let report = Simulator::new(&gs.lowered.graph, &unit)
            .run(&DelaySource::random(seed, 6))
            .expect("simulates");
        assert!(report.violations.is_empty());
        assert!(report.matches_analytic);
        let gap = report.start[vb.index()] as i64 - report.start[va.index()] as i64;
        println!(
            "\nseed {seed}: y sampled at cycle {}, x at cycle {} (gap {gap}, required exactly 1)",
            report.start[va.index()],
            report.start[vb.index()]
        );
        assert_eq!(gap, 1, "the min/max constraint pair pins the gap");
        print!(
            "{}",
            Waveform::from_report(&gs.lowered.graph, &report).render()
        );
    }
}
