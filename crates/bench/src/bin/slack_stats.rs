//! Relative-slack statistics per benchmark: how pinned each design's
//! schedule is (zero-slack vertices form the relative critical paths),
//! and the average mobility available for resource sharing or
//! control-simplifying serialization (§VI's closing remark).

use rsched_core::relative_slack;

fn main() {
    println!("relative slack across the hierarchy (per tracked vertex/anchor pair)");
    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>12}",
        "design", "pairs", "critical", "avg slack", "max slack"
    );
    println!("{}", "-".repeat(70));
    for bench in rsched_designs::benchmarks::all_benchmarks() {
        let scheduled = rsched_sgraph::schedule_design(&bench.design).expect("schedules");
        let mut pairs = 0u64;
        let mut critical = 0u64;
        let mut total = 0i64;
        let mut max = 0i64;
        for gs in scheduled.graph_schedules() {
            let g = &gs.lowered.graph;
            let slack = relative_slack(g, &gs.schedule).expect("feasible");
            for v in g.vertex_ids() {
                for &a in slack.anchors() {
                    if let Some(s) = slack.slack(v, a) {
                        pairs += 1;
                        total += s;
                        max = max.max(s);
                        if s == 0 {
                            critical += 1;
                        }
                    }
                }
            }
        }
        println!(
            "{:<22} {:>8} {:>9}% {:>12.2} {:>12}",
            bench.name,
            pairs,
            100 * critical / pairs.max(1),
            total as f64 / pairs.max(1) as f64,
            max
        );
    }
    println!(
        "\n(zero-slack pairs lie on relative critical paths; positive slack \
         is headroom for\n resource sharing or §VI control-simplifying \
         serialization without losing performance)"
    );
}
