//! §VI / Fig. 12: control-implementation cost across the benchmarks —
//! counter-based vs shift-register-based, full vs irredundant anchor
//! sets. Quantifies both §VI savings claims.

use rsched_ctrl::{generate, ControlCost, ControlStyle};

fn main() {
    println!("control cost (gate equivalents) per design, summed over the hierarchy");
    println!(
        "{:<22} | {:>12} {:>12} | {:>12} {:>12}",
        "", "counter", "", "shift-reg", ""
    );
    println!(
        "{:<22} | {:>12} {:>12} | {:>12} {:>12}",
        "design", "full A(v)", "min IR(v)", "full A(v)", "min IR(v)"
    );
    println!("{}", "-".repeat(80));
    for bench in rsched_designs::benchmarks::all_benchmarks() {
        let scheduled = rsched_sgraph::schedule_design(&bench.design).expect("schedules");
        let mut totals = [[0u64; 2]; 2];
        for gs in scheduled.graph_schedules() {
            for (si, style) in [ControlStyle::Counter, ControlStyle::ShiftRegister]
                .into_iter()
                .enumerate()
            {
                let full: ControlCost = generate(&gs.lowered.graph, &gs.schedule, style).cost();
                let min: ControlCost = generate(&gs.lowered.graph, &gs.schedule_ir, style).cost();
                totals[si][0] += full.total_estimate();
                totals[si][1] += min.total_estimate();
            }
        }
        println!(
            "{:<22} | {:>12} {:>12} | {:>12} {:>12}",
            bench.name, totals[0][0], totals[0][1], totals[1][0], totals[1][1]
        );
    }
    println!(
        "\n(§VI: redundant-anchor removal reduces synchronization logic and\n\
         σ_max-driven register depth; counter vs shift register trades\n\
         comparator logic for flip-flops.)"
    );
}
