//! §VII run-time claim: every benchmark schedules in negligible time
//! ("most examples take less than 1 s ... worst case 2 s" on a
//! DecStation 5000/200).

fn main() {
    println!("scheduling wall-clock per benchmark (full hierarchy)");
    println!("{:<22} {:>12}", "design", "seconds");
    println!("{}", "-".repeat(36));
    for row in rsched_bench::measure_all() {
        println!("{:<22} {:>12.6}", row.name, row.seconds);
    }
}
