//! Regenerates Table II: anchor sets and minimum offsets of the Fig. 2
//! constraint graph.

use rsched_core::{schedule, AnchorSets};
use rsched_designs::paper::fig2;

fn main() {
    let (g, a, _) = fig2();
    let sets = AnchorSets::compute(&g).expect("acyclic");
    let omega = schedule(&g).expect("well-posed");
    println!("Table II — anchor sets and minimum offsets (Fig. 2 graph)");
    println!(
        "{:<8} {:<16} {:>6} {:>6}",
        "vertex", "anchor set A(v)", "σ_v0", "σ_a"
    );
    println!("{}", "-".repeat(40));
    for v in g.vertex_ids() {
        if v == g.sink() {
            continue;
        }
        let set: Vec<String> = sets.set(v).map(|x| g.vertex(x).name().to_owned()).collect();
        let fmt = |o: Option<i64>| o.map_or("-".to_owned(), |o| o.to_string());
        println!(
            "{:<8} {{{:<14}}} {:>6} {:>6}",
            g.vertex(v).name(),
            set.join(", "),
            fmt(omega.offset(v, g.source())),
            fmt(omega.offset(v, a)),
        );
    }
}
