//! Regenerates Fig. 3: ill-posed vs well-posed timing constraints, and
//! the `makeWellposed` repair of 3(b) into 3(c).

use rsched_core::{check_well_posed, make_well_posed, ScheduleError, WellPosedness};
use rsched_designs::paper::{fig3a, fig3b};
use rsched_graph::DotOptions;

fn main() {
    println!("Fig. 3(a): anchor on the constrained path");
    let (mut ga, a, (vi, _vj)) = fig3a();
    report(&ga);
    match make_well_posed(&mut ga) {
        Err(ScheduleError::CannotSerialize { anchor, vertex }) => println!(
            "  makeWellposed: cannot serialize {vertex} after {anchor} \
             (unbounded cycle) -> constraints are inconsistent\n"
        ),
        other => println!("  unexpected outcome: {other:?}\n"),
    }
    let _ = (a, vi);

    println!("Fig. 3(b): independent synchronizations");
    let (mut gb, (_, a2), (vi, _)) = fig3b();
    report(&gb);
    let fix = make_well_posed(&mut gb).expect("repairable");
    println!(
        "  makeWellposed added {} edge(s): {:?} (Fig. 3(c))",
        fix.len(),
        fix.added
    );
    assert_eq!(fix.added, vec![(a2, vi)]);
    report(&gb);
    println!(
        "\nFig. 3(c) graph in DOT:\n{}",
        gb.to_dot(&DotOptions::default())
    );
}

fn report(g: &rsched_graph::ConstraintGraph) {
    match check_well_posed(g).expect("acyclic") {
        WellPosedness::WellPosed => println!("  -> well-posed"),
        WellPosedness::Unfeasible { witness } => {
            println!("  -> unfeasible (positive cycle at {witness})")
        }
        WellPosedness::IllPosed { violations } => {
            for v in violations {
                println!(
                    "  -> ill-posed: backward edge {} -> {} missing anchors {:?}",
                    v.from, v.to, v.missing
                );
            }
        }
    }
}
