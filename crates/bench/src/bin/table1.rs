//! Regenerates Table I: translation of sequencing edges and timing
//! constraints into constraint-graph edges.

use rsched_graph::{ConstraintGraph, ExecDelay};

fn main() {
    let mut g = ConstraintGraph::new();
    let vi = g.add_operation("vi", ExecDelay::Fixed(3));
    let vj = g.add_operation("vj", ExecDelay::Fixed(1));
    let anchor = g.add_operation("a", ExecDelay::Unbounded);

    let seq = g.add_dependency(vi, vj).expect("valid edge");
    let seq_anchor = g.add_dependency(anchor, vj).expect("valid edge");
    let min = g.add_min_constraint(vi, vj, 5).expect("valid constraint");
    let max = g.add_max_constraint(vi, vj, 7).expect("valid constraint");

    println!("Table I — translation to constraint graph");
    println!(
        "{:<34} {:<9} {:<12} {:<12}",
        "item", "type", "edge", "edge weight"
    );
    println!("{}", "-".repeat(70));
    for (label, id) in [
        ("sequencing edge (vi, vj)", seq),
        ("sequencing edge (a, vj), a anchor", seq_anchor),
        ("minimum constraint l_ij = 5", min),
        ("maximum constraint u_ij = 7", max),
    ] {
        let e = g.edge(id);
        let kind = if e.is_forward() {
            "forward"
        } else {
            "backward"
        };
        println!(
            "{:<34} {:<9} {:<12} {:<12}",
            label,
            kind,
            format!("({}, {})", e.from(), e.to()),
            e.weight().to_string()
        );
    }
}
