//! Flow comparison: heuristic resource-constrained list scheduling vs the
//! paper's flow (binding → constrained conflict resolution → relative
//! scheduling) on random fixed-delay graphs with timing constraints.
//!
//! The point the paper's introduction makes: heuristics interleave
//! scheduling and binding and give no constraint guarantees; the
//! Hebe-style flow resolves resource conflicts first and then schedules
//! *exactly*, satisfying the constraints or proving them unsatisfiable.

use std::collections::HashMap;

use rsched_binding::{bind, list_schedule, resolve_conflicts, ResourcePool, Strategy};
use rsched_core::schedule;
use rsched_designs::random::{random_constraint_graph, RandomGraphConfig};
use rsched_graph::VertexId;

fn main() {
    println!(
        "{:>5} {:>6} | {:>12} {:>10} | {:>12} {:>10}",
        "seed", "|V|", "list latency", "violations", "exact latency", "violations"
    );
    println!("{}", "-".repeat(70));
    let mut exact_wins = 0;
    let mut runs = 0;
    for seed in 0..10u64 {
        let config = RandomGraphConfig {
            n_ops: 40,
            unbounded_prob: 0.0, // the heuristic needs fixed delays
            n_max_constraints: 3,
            ..Default::default()
        };
        let g = random_constraint_graph(seed, &config);
        // Classify every third op onto a shared ALU (2 instances).
        let classes: HashMap<VertexId, String> = g
            .operation_ids()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(_, v)| (v, "alu".to_owned()))
            .collect();
        let pool = ResourcePool::new().with_kind("alu", 2);

        let heuristic = list_schedule(&g, &classes, &pool).expect("fixed-delay graph");

        let mut exact_graph = g.clone();
        let binding = bind(&exact_graph, &classes, &pool).expect("binds");
        let exact = resolve_conflicts(&mut exact_graph, &binding, Strategy::Heuristic)
            .ok()
            .and_then(|_| schedule(&exact_graph).ok());
        let (exact_latency, exact_viol) = match &exact {
            Some(omega) => (
                omega
                    .offset(exact_graph.sink(), exact_graph.source())
                    .unwrap_or(0),
                0usize,
            ),
            None => (0, usize::MAX),
        };
        println!(
            "{:>5} {:>6} | {:>12} {:>10} | {:>12} {:>10}",
            seed,
            g.n_vertices(),
            heuristic.latency,
            heuristic.violated_constraints,
            exact_latency,
            if exact.is_some() {
                exact_viol.to_string()
            } else {
                "fail".into()
            }
        );
        if exact.is_some() && heuristic.violated_constraints > 0 {
            exact_wins += 1;
        }
        runs += 1;
    }
    println!(
        "\n{exact_wins}/{runs} cases where the heuristic violated timing \
         constraints that the exact flow satisfied"
    );
}
