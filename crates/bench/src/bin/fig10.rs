//! Regenerates Fig. 10: the iteration-by-iteration trace of offsets in
//! the iterative incremental scheduling algorithm.

use rsched_core::schedule_traced;
use rsched_designs::paper::fig10;
use rsched_graph::VertexId;

fn main() {
    let (g, a, _) = fig10();
    let trace = schedule_traced(&g).expect("well-posed");
    println!("Fig. 10 — trace of offsets in the scheduling algorithm");
    println!("(each cell: σ_v0, σ_a; '-' = anchor not in the vertex's set)\n");

    let fmt = |omega: &rsched_core::RelativeSchedule, v: VertexId| {
        let f = |o: Option<i64>| o.map_or("-".to_owned(), |o| o.to_string());
        format!(
            "{},{}",
            f(omega.offset(v, g.source())),
            f(omega.offset(v, a))
        )
    };

    // Header.
    print!("{:<8}", "vertex");
    for (i, _) in trace.iterations.iter().enumerate() {
        print!(
            " | {:<9} {:<9}",
            format!("it{} comp", i + 1),
            format!("it{} adj", i + 1)
        );
    }
    println!();
    println!("{}", "-".repeat(8 + trace.iterations.len() * 23));

    for v in g.vertex_ids() {
        if v == g.source() {
            continue;
        }
        let name = if v == g.sink() {
            "vn"
        } else {
            g.vertex(v).name()
        };
        print!("{name:<8}");
        for it in &trace.iterations {
            let comp = fmt(&it.computed, v);
            let adj = if it.violations.is_empty() {
                String::new()
            } else {
                let r = fmt(&it.readjusted, v);
                if r == comp {
                    String::new()
                } else {
                    r
                }
            };
            print!(" | {comp:<9} {adj:<9}");
        }
        println!();
    }
    println!(
        "\nviolated backward edges per iteration: {:?}",
        trace
            .iterations
            .iter()
            .map(|it| it.violations.len())
            .collect::<Vec<_>>()
    );
    println!(
        "minimum schedule reached in iteration {}",
        trace.schedule.iterations()
    );
}
