//! Gate-level synthesis statistics per benchmark: DFFs, gates and
//! inverters of the fully synthesized control (§VI, realized down to
//! logic), counter vs shift-register, full vs irredundant anchor sets.

use rsched_ctrl::{generate, synthesize, ControlStyle, NetlistStats};

fn main() {
    println!("synthesized control netlists (cells summed over the hierarchy)");
    println!(
        "{:<22} | {:>22} | {:>22} | {:>22} | {:>22}",
        "", "counter / full", "counter / min", "shift / full", "shift / min"
    );
    println!(
        "{:<22} | {:>8}{:>8}{:>6} | {:>8}{:>8}{:>6} | {:>8}{:>8}{:>6} | {:>8}{:>8}{:>6}",
        "design",
        "dff",
        "gate",
        "inv",
        "dff",
        "gate",
        "inv",
        "dff",
        "gate",
        "inv",
        "dff",
        "gate",
        "inv"
    );
    println!("{}", "-".repeat(120));
    for bench in rsched_designs::benchmarks::all_benchmarks() {
        let scheduled = rsched_sgraph::schedule_design(&bench.design).expect("schedules");
        let mut cells = [[NetlistStats::default(); 2]; 2];
        for gs in scheduled.graph_schedules() {
            for (si, style) in [ControlStyle::Counter, ControlStyle::ShiftRegister]
                .into_iter()
                .enumerate()
            {
                for (mi, omega) in [&gs.schedule, &gs.schedule_ir].into_iter().enumerate() {
                    let s = synthesize(&generate(&gs.lowered.graph, omega, style))
                        .netlist
                        .stats();
                    cells[si][mi].dffs += s.dffs;
                    cells[si][mi].gates2 += s.gates2;
                    cells[si][mi].inverters += s.inverters;
                }
            }
        }
        print!("{:<22}", bench.name);
        for row in &cells {
            for s in row {
                print!(" | {:>8}{:>8}{:>6}", s.dffs, s.gates2, s.inverters);
            }
        }
        println!();
    }
    println!(
        "\n(every netlist is equivalence-checked against the behavioural \
         control model by the test-suite)"
    );
}
