//! Regenerates Table IV: maximum and sum-of-maximum offsets, full vs
//! minimum anchor sets, measured against the paper's published values.

fn main() {
    let rows = rsched_bench::measure_all();
    print!("{}", rsched_bench::render_table4(&rows));
}
