//! Regenerates Table III: full vs minimum anchor sets across the eight
//! benchmark designs, measured against the paper's published values.

fn main() {
    let rows = rsched_bench::measure_all();
    print!("{}", rsched_bench::render_table3(&rows));
}
