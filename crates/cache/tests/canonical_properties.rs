//! Property tests of the canonical-form cache invariants.
//!
//! Two properties carry the whole correctness argument of `rsched-cache`:
//!
//! 1. **Label independence** — the canonical key (hash *and* full byte
//!    serialization) of a constraint graph is invariant under renaming
//!    every vertex and permuting the order operations are inserted in.
//!    This is what lets structurally identical requests share an entry.
//! 2. **Hit transparency** — a schedule served from cache, mapped back
//!    through the query's own permutation, is bit-identical (offsets,
//!    anchor sets, iteration count) to what a cold run on the query's
//!    labeling would compute.
//!
//! Random graph specs mix fixed/unbounded delays with dependency, min and
//! max constraints; the relabeling is an arbitrary permutation of op
//! insertion order plus fresh names.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rsched_cache::{schedule_cached, ScheduleCache};
use rsched_core::schedule;
use rsched_graph::{ConstraintGraph, ExecDelay};

#[derive(Debug, Clone)]
struct GraphSpec {
    /// `None` = unbounded delay.
    delays: Vec<Option<u64>>,
    /// Dependency edges `(i, j)`, kept only when `i < j`.
    deps: Vec<(usize, usize)>,
    /// Minimum constraints `(i, j, l)`, kept only when `i < j`.
    mins: Vec<(usize, usize, u64)>,
    /// Maximum constraints `(i, j, u)`, any `i != j`.
    maxs: Vec<(usize, usize, u64)>,
}

fn graph_spec(max_ops: usize) -> impl Strategy<Value = GraphSpec> {
    (2usize..max_ops).prop_flat_map(|n| {
        (
            proptest::collection::vec(
                prop_oneof![3 => (0u64..6).prop_map(Some), 1 => Just(None)],
                n,
            ),
            proptest::collection::vec((0..n, 0..n), 1..2 * n),
            proptest::collection::vec((0..n, 0..n, 0u64..6), 0..4),
            proptest::collection::vec((0..n, 0..n, 0u64..12), 0..4),
        )
            .prop_map(|(delays, deps, mins, maxs)| GraphSpec {
                delays,
                deps,
                mins,
                maxs,
            })
    })
}

/// Build the spec's graph under a labeling: operations are inserted in
/// `order[k]` logical-index order and named through `name`. The identity
/// labeling is `build(spec, &(0..n).collect::<Vec<_>>(), |i| format!("op{i}"))`.
fn build(spec: &GraphSpec, order: &[usize], name: impl Fn(usize) -> String) -> ConstraintGraph {
    let mut g = ConstraintGraph::new();
    let mut ids = vec![None; spec.delays.len()];
    for &i in order {
        ids[i] = Some(g.add_operation(
            name(i),
            match spec.delays[i] {
                Some(d) => ExecDelay::Fixed(d),
                None => ExecDelay::Unbounded,
            },
        ));
    }
    let v = |i: usize| ids[i].expect("order is a permutation");
    for &(i, j) in &spec.deps {
        if i < j {
            g.add_dependency(v(i), v(j))
                .expect("i < j keeps G_f acyclic");
        }
    }
    for &(i, j, l) in &spec.mins {
        if i < j {
            g.add_min_constraint(v(i), v(j), l)
                .expect("i < j cannot contradict dependencies");
        }
    }
    for &(i, j, u) in &spec.maxs {
        if i != j {
            g.add_max_constraint(v(i), v(j), u)
                .expect("valid endpoints");
        }
    }
    g.polarize().expect("fresh operations polarize");
    g
}

fn identity(spec: &GraphSpec) -> ConstraintGraph {
    let order: Vec<usize> = (0..spec.delays.len()).collect();
    build(spec, &order, |i| format!("op{i}"))
}

/// A relabeled twin: shuffled insertion order, fresh names.
fn relabeled(spec: &GraphSpec, seed: u64) -> ConstraintGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..spec.delays.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let tag: u64 = rng.gen();
    build(spec, &order, |i| format!("x{tag:x}_{i}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Property 1: the canonical key sees through any relabeling — and
    /// the permutations it hands back are genuine inverses.
    #[test]
    fn canonical_key_is_label_independent(spec in graph_spec(12), seed in 0u64..1 << 48) {
        let original = identity(&spec);
        let twin = relabeled(&spec, seed);
        let k1 = original.canonical_key();
        let k2 = twin.canonical_key();
        prop_assert_eq!(k1.hash, k2.hash);
        prop_assert_eq!(&k1.bytes, &k2.bytes);
        for (v, &slot) in k2.perm.iter().enumerate() {
            prop_assert_eq!(k2.inv[slot as usize] as usize, v);
        }
    }

    /// Distinct structures stay distinct: perturbing one delay changes
    /// the canonical bytes (the key is content-addressed, not lossy).
    #[test]
    fn canonical_key_separates_structures(spec in graph_spec(10), which in 0usize..10) {
        let original = identity(&spec);
        let mut perturbed = spec.clone();
        let i = which % perturbed.delays.len();
        perturbed.delays[i] = match perturbed.delays[i] {
            Some(d) => Some(d + 17),
            None => Some(17),
        };
        let other = identity(&perturbed);
        prop_assert_ne!(original.canonical_key().bytes, other.canonical_key().bytes);
    }

    /// Property 2: a hit served across a relabeling is bit-identical to
    /// a cold run on the query's own labeling.
    #[test]
    fn hit_across_relabeling_is_bit_identical(spec in graph_spec(12), seed in 0u64..1 << 48) {
        let original = identity(&spec);
        let twin = relabeled(&spec, seed);
        let cache = ScheduleCache::new(16);
        match schedule_cached(&cache, &original, 1) {
            Ok((_, hit)) => {
                prop_assert!(!hit, "first probe of an empty cache cannot hit");
                let (warm, hit) = schedule_cached(&cache, &twin, 1).expect(
                    "schedulability is structural: the twin must schedule too",
                );
                prop_assert!(hit, "relabeled twin must hit the cached entry");
                let cold = schedule(&twin).expect("twin schedules cold");
                prop_assert_eq!(warm, cold);
            }
            Err(_) => {
                // Errors are never cached; the twin must fail the same
                // way a cold run does, with nothing stored.
                prop_assert!(schedule(&twin).is_err());
                prop_assert_eq!(cache.stats().entries, 0);
            }
        }
    }
}
