//! Canonical-form schedule cache with content-addressed hits.
//!
//! Scheduling a constraint graph is a pure function of the graph's
//! *structure*: vertex names, insertion order, and redundant sequencing
//! edges do not affect offsets, anchor sets, or feasibility. This crate
//! exploits that purity to memoize schedule results across requests that
//! differ only in labeling:
//!
//! 1. [`ConstraintGraph::canonical_key`] relabels the graph into a
//!    deterministic canonical order and serializes it to a byte string
//!    whose FNV-1a hash is the cache key (no canonical graph is built on
//!    the probe path — only the permutation and the serialization).
//! 2. [`ScheduleCache`] is a sharded LRU keyed by that hash; each entry
//!    stores the full canonical bytes (as a collision guard) and the
//!    schedule result *in canonical space*: offsets, anchor sets, and the
//!    iteration count that together form the feasibility certificate —
//!    an entry exists only for graphs proven well-posed by a cold run.
//! 3. On a hit, the cached schedule is mapped back through the query's
//!    own permutation ([`RelativeSchedule::remapped`]), producing a result
//!    bit-identical to what a cold run on the query's labeling would
//!    compute — without touching the iterative kernel.
//!
//! Because each query carries its own permutation and canonical bytes are
//! compared on every probe, a weak hash or a canonicalizer collision can
//! only cost hit rate, never correctness.
//!
//! Only `Ok` results are cached: error witnesses (`Unfeasible`,
//! `IllPosed`) name vertices in the *original* labeling and depend on edge
//! order, and failing runs abort early, so recomputing them is cheap.
//!
//! # Example
//!
//! ```
//! use rsched_cache::{schedule_cached, ScheduleCache};
//! use rsched_graph::{ConstraintGraph, ExecDelay};
//!
//! # fn main() -> Result<(), rsched_core::ScheduleError> {
//! let mut g = ConstraintGraph::new();
//! let a = g.add_operation("a", ExecDelay::Fixed(2));
//! let b = g.add_operation("b", ExecDelay::Fixed(1));
//! g.add_dependency(a, b).unwrap();
//! g.polarize().unwrap();
//!
//! let cache = ScheduleCache::new(64);
//! let (cold, hit) = schedule_cached(&cache, &g, 1)?;
//! assert!(!hit);
//! let (warm, hit) = schedule_cached(&cache, &g, 1)?;
//! assert!(hit);
//! assert_eq!(cold, warm);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rsched_core::{schedule_threaded, RelativeSchedule, ScheduleError};
use rsched_graph::{CanonicalKey, ConstraintGraph};

/// Number of independently locked shards. Power of two so the hash can be
/// folded with a mask; small enough that an empty cache stays cheap.
const N_SHARDS: usize = 8;

/// One cache entry: the canonical serialization it was keyed by (compared
/// verbatim on every probe to defeat 64-bit hash collisions) and the
/// schedule in canonical space.
struct Entry {
    bytes: Vec<u8>,
    value: Arc<RelativeSchedule>,
    /// Logical access clock for LRU eviction; bumped on every hit.
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// Monotonic counters describing cache behaviour since construction.
///
/// `entries` is a point-in-time gauge; the rest only grow. All counters
/// are updated with relaxed atomics: they are observability data, not
/// synchronization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned a cached schedule.
    pub hits: u64,
    /// Probes that found nothing (or mismatched canonical bytes).
    pub misses: u64,
    /// Entries displaced to make room for an insert.
    pub evictions: u64,
    /// Successful inserts (including overwrites of a colliding key).
    pub inserts: u64,
    /// Live entries across all shards right now.
    pub entries: u64,
    /// Total nanoseconds spent serving hits (canonicalize + probe + remap).
    pub hit_nanos: u64,
}

impl CacheStats {
    /// Mean nanoseconds per hit, or 0 when there were no hits.
    pub fn mean_hit_nanos(&self) -> u64 {
        self.hit_nanos.checked_div(self.hits).unwrap_or(0)
    }
}

/// A sharded, content-addressed LRU cache of schedule results.
///
/// Capacity is a total entry budget split evenly across shards; a
/// capacity of `0` disables the cache entirely (every probe misses
/// without counting, inserts are dropped), so callers can hold one
/// unconditionally and let configuration decide.
pub struct ScheduleCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard; 0 means the cache is disabled.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    hit_nanos: AtomicU64,
}

impl ScheduleCache {
    /// Create a cache holding at most `capacity` schedules. `0` disables
    /// caching.
    pub fn new(capacity: usize) -> ScheduleCache {
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(N_SHARDS)
        };
        ScheduleCache {
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            hit_nanos: AtomicU64::new(0),
        }
    }

    /// Whether the cache stores anything at all (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.shard_capacity > 0
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        // Fold the high bits in so shard choice is not just the hash's
        // low byte (FNV mixes low bits last).
        let folded = hash ^ (hash >> 32) ^ (hash >> 16);
        &self.shards[(folded as usize) & (N_SHARDS - 1)]
    }

    /// Probe for a canonical form. Returns the canonical-space schedule on
    /// a byte-verified hit; counts a hit or miss either way.
    pub fn lookup(&self, form: &CanonicalKey) -> Option<Arc<RelativeSchedule>> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self
            .shard_for(form.hash)
            .lock()
            .expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&form.hash) {
            Some(entry) if entry.bytes == form.bytes => {
                entry.tick = clock;
                let value = Arc::clone(&entry.value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            _ => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a canonical-space schedule for a canonical form, evicting
    /// the least recently used entry of the target shard if it is full.
    ///
    /// The caller is responsible for only inserting schedules produced by
    /// a successful cold run on a graph whose canonical form is `form` —
    /// that proof of well-posedness is what a later hit returns.
    pub fn insert(&self, form: &CanonicalKey, canonical: RelativeSchedule) {
        if !self.enabled() {
            return;
        }
        let mut shard = self
            .shard_for(form.hash)
            .lock()
            .expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&form.hash) {
            // LRU eviction by linear scan: shards are small (capacity /
            // N_SHARDS entries) and eviction is dwarfed by the schedule
            // run that preceded the insert.
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            form.hash,
            Entry {
                bytes: form.bytes.clone(),
                value: Arc::new(canonical),
                tick: clock,
            },
        );
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Canonicalize `graph` and probe; on a hit, return the schedule
    /// mapped back to `graph`'s own labeling. Hit latency (including
    /// canonicalization and the remap) is accumulated into the stats.
    pub fn get(&self, graph: &ConstraintGraph) -> Option<RelativeSchedule> {
        if !self.enabled() {
            return None;
        }
        let started = Instant::now();
        let form = graph.canonical_key();
        let canonical = self.lookup(&form)?;
        let out = canonical.remapped(&form.inv);
        self.record_hit_nanos(started.elapsed().as_nanos() as u64);
        Some(out)
    }

    /// Canonicalize `graph` and store `result` (given in `graph`'s own
    /// labeling, as produced by a successful cold run on it).
    pub fn put(&self, graph: &ConstraintGraph, result: &RelativeSchedule) {
        if !self.enabled() {
            return;
        }
        let form = graph.canonical_key();
        self.insert(&form, result.remapped(&form.perm));
    }

    /// Add `nanos` to the accumulated hit-serving time.
    pub fn record_hit_nanos(&self, nanos: u64) {
        self.hit_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries,
            hit_nanos: self.hit_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Schedule `graph`, consulting and populating `cache`.
///
/// Returns the schedule in `graph`'s own labeling plus whether it was
/// served from cache. A hit is bit-identical (offsets, anchor sets, and
/// iteration count) to what the cold path would have produced. Errors are
/// never cached; a disabled cache degrades to plain
/// [`schedule_threaded`].
pub fn schedule_cached(
    cache: &ScheduleCache,
    graph: &ConstraintGraph,
    threads: usize,
) -> Result<(RelativeSchedule, bool), ScheduleError> {
    if !cache.enabled() {
        return Ok((schedule_threaded(graph, threads)?, false));
    }
    let started = Instant::now();
    let form = graph.canonical_key();
    if let Some(canonical) = cache.lookup(&form) {
        let out = canonical.remapped(&form.inv);
        cache.record_hit_nanos(started.elapsed().as_nanos() as u64);
        return Ok((out, true));
    }
    let cold = schedule_threaded(graph, threads)?;
    cache.insert(&form, cold.remapped(&form.perm));
    Ok((cold, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::schedule;
    use rsched_graph::ExecDelay;

    /// The Fig. 5-style fixture used across crates: a chain with an
    /// unbounded op and both min and max constraints, built with the
    /// given op insertion order and names.
    fn fixture(order: &[usize], names: &[&str; 4]) -> ConstraintGraph {
        let mut g = ConstraintGraph::new();
        let delays = [
            ExecDelay::Fixed(2),
            ExecDelay::Unbounded,
            ExecDelay::Fixed(1),
            ExecDelay::Fixed(3),
        ];
        let mut ids = [None; 4];
        for &slot in order {
            ids[slot] = Some(g.add_operation(names[slot], delays[slot]));
        }
        let v = |i: usize| ids[i].unwrap();
        g.add_dependency(v(0), v(1)).unwrap();
        g.add_dependency(v(1), v(2)).unwrap();
        g.add_dependency(v(0), v(3)).unwrap();
        g.add_min_constraint(v(0), v(3), 4).unwrap();
        g.add_max_constraint(v(2), v(3), 9).unwrap();
        g.polarize().unwrap();
        g
    }

    #[test]
    fn cold_then_hit_is_bit_identical() {
        let g = fixture(&[0, 1, 2, 3], &["a", "b", "c", "d"]);
        let cache = ScheduleCache::new(16);
        let (cold, hit) = schedule_cached(&cache, &g, 1).unwrap();
        assert!(!hit);
        let (warm, hit) = schedule_cached(&cache, &g, 1).unwrap();
        assert!(hit);
        assert_eq!(cold, warm);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn hit_across_relabeling_matches_cold_run() {
        let g1 = fixture(&[0, 1, 2, 3], &["a", "b", "c", "d"]);
        let g2 = fixture(&[3, 1, 0, 2], &["x", "q", "m", "z"]);
        let cache = ScheduleCache::new(16);
        let (_, hit) = schedule_cached(&cache, &g1, 1).unwrap();
        assert!(!hit);
        // Same structure, different labels and insertion order: must hit,
        // and must equal what a cold run on g2 itself computes.
        let (warm, hit) = schedule_cached(&cache, &g2, 1).unwrap();
        assert!(hit);
        assert_eq!(warm, schedule(&g2).unwrap());
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let g1 = fixture(&[0, 1, 2, 3], &["a", "b", "c", "d"]);
        let mut g2 = ConstraintGraph::new();
        let a = g2.add_operation("a", ExecDelay::Fixed(2));
        let b = g2.add_operation("b", ExecDelay::Fixed(5));
        g2.add_dependency(a, b).unwrap();
        g2.polarize().unwrap();
        let cache = ScheduleCache::new(16);
        let (_, hit) = schedule_cached(&cache, &g1, 1).unwrap();
        assert!(!hit);
        let (s2, hit) = schedule_cached(&cache, &g2, 1).unwrap();
        assert!(!hit);
        assert_eq!(s2, schedule(&g2).unwrap());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        let cache = ScheduleCache::new(8); // 1 entry per shard
        for n in 1..40u64 {
            let mut g = ConstraintGraph::new();
            let mut prev = g.add_operation("op0", ExecDelay::Fixed(1));
            for i in 1..=n {
                let next = g.add_operation(format!("op{i}"), ExecDelay::Fixed(i % 5 + 1));
                g.add_dependency(prev, next).unwrap();
                prev = next;
            }
            g.polarize().unwrap();
            let (_, hit) = schedule_cached(&cache, &g, 1).unwrap();
            assert!(!hit);
        }
        let stats = cache.stats();
        assert!(
            stats.entries <= 8,
            "entries {} exceed capacity",
            stats.entries
        );
        assert_eq!(stats.inserts, 39);
        assert_eq!(stats.evictions, stats.inserts - stats.entries);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let g = fixture(&[0, 1, 2, 3], &["a", "b", "c", "d"]);
        let cache = ScheduleCache::new(0);
        assert!(!cache.enabled());
        let (s1, hit) = schedule_cached(&cache, &g, 1).unwrap();
        assert!(!hit);
        let (_, hit) = schedule_cached(&cache, &g, 1).unwrap();
        assert!(!hit);
        assert_eq!(s1, schedule(&g).unwrap());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn unfeasible_graphs_are_not_cached() {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Fixed(5));
        let b = g.add_operation("b", ExecDelay::Fixed(1));
        g.add_dependency(a, b).unwrap();
        g.add_max_constraint(a, b, 2).unwrap(); // needs >= 5, allows <= 2
        g.polarize().unwrap();
        let cache = ScheduleCache::new(16);
        assert!(schedule_cached(&cache, &g, 1).is_err());
        assert!(schedule_cached(&cache, &g, 1).is_err());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn caching_survives_tombstoned_edges() {
        // The serve edit path caches through graphs that have seen
        // remove_edge, whose tombstones leave live EdgeId indices above
        // the live-edge count; canonicalization once indexed a keep mask
        // sized by the live count and panicked. Reproduce the session
        // shape: constrain, over-constrain, remove edges, schedule again.
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Fixed(2));
        let b = g.add_operation("b", ExecDelay::Fixed(1));
        g.add_dependency(a, b).unwrap();
        g.add_max_constraint(a, b, 5).unwrap();
        g.add_min_constraint(a, b, 9).unwrap(); // min 9 > max 5
        g.polarize().unwrap();
        let cache = ScheduleCache::new(16);
        assert!(schedule_cached(&cache, &g, 1).is_err());
        // Remove the offending min edge (and the dep, for sparser ids).
        let doomed: Vec<_> = g
            .edges()
            .filter(|(_, e)| e.from() == a && e.to() == b)
            .map(|(id, _)| id)
            .take(2)
            .collect();
        for id in doomed {
            g.remove_edge(id).unwrap();
        }
        let (result, hit) = schedule_cached(&cache, &g, 1).unwrap();
        assert!(!hit);
        assert_eq!(result, schedule(&g).unwrap());
        cache.put(&g, &result);
        assert_eq!(cache.get(&g).unwrap(), result);
    }

    #[test]
    fn get_and_put_round_trip_through_canonical_space() {
        let g1 = fixture(&[0, 1, 2, 3], &["a", "b", "c", "d"]);
        let g2 = fixture(&[2, 0, 3, 1], &["p", "q", "r", "s"]);
        let cache = ScheduleCache::new(16);
        assert!(cache.get(&g1).is_none());
        let cold = schedule(&g1).unwrap();
        cache.put(&g1, &cold);
        assert_eq!(cache.get(&g1).unwrap(), cold);
        assert_eq!(cache.get(&g2).unwrap(), schedule(&g2).unwrap());
    }
}
