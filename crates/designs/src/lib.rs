//! The paper's benchmark designs and example graphs.
//!
//! Three families of inputs for the rest of the workspace:
//!
//! * [`paper`] — the worked examples of the paper's figures (Fig. 2 /
//!   Table II, Fig. 3, Fig. 8, Fig. 10, Fig. 12) as ready-made constraint
//!   graphs;
//! * [`benchmarks`] — the eight designs of Tables III/IV (traffic, length,
//!   gcd, frisc, the DAIO phase decoder and receiver, DCT phases A and B).
//!   The paper's HardwareC sources were never published (only gcd appears,
//!   as Fig. 13), so each design is reconstructed to match its *published*
//!   `|A| / |V|` signature and described structure exactly; the anchor-set
//!   totals then emerge from the reconstruction (see EXPERIMENTS.md for
//!   paper-vs-measured);
//! * [`random`] — seeded random constraint graphs and hierarchical designs
//!   for scaling benchmarks and property tests;
//! * [`cascade`] — chain designs with tight trailing max constraints that
//!   force the worst-case `links + 1` kernel iterations, for cache and
//!   multi-round fixpoint workloads.
//!
//! The verbatim Fig. 13 gcd HardwareC source ships as
//! [`GCD_HARDWAREC`] and compiles through `rsched-hdl` (see
//! [`benchmarks::gcd_from_hardwarec`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod cascade;
pub mod paper;
pub mod random;

/// The HardwareC source of the paper's Fig. 13 gcd benchmark.
pub const GCD_HARDWAREC: &str = include_str!("../hc/gcd.hc");

/// A HardwareC rendition of the `traffic` benchmark (the original source
/// was never published; this one demonstrates the front end on the same
/// kind of design).
pub const TRAFFIC_HARDWAREC: &str = include_str!("../hc/traffic.hc");

/// A HardwareC rendition of the `length` (pulse-length detector)
/// benchmark.
pub const LENGTH_HARDWAREC: &str = include_str!("../hc/length.hc");
