//! The worked examples of the paper's figures, as constraint graphs.

use rsched_graph::{ConstraintGraph, ExecDelay, VertexId};

/// Fig. 2 / Table II: the six-vertex example with anchors `v0` and `a`, a
/// maximum timing constraint from `v1` to `v2` and a minimum timing
/// constraint from `v0` to `v3`.
///
/// Returns the graph, the anchor `a`, and `[v1, v2, v3, v4]`.
pub fn fig2() -> (ConstraintGraph, VertexId, [VertexId; 4]) {
    let mut g = ConstraintGraph::new();
    let a = g.add_operation("a", ExecDelay::Unbounded);
    let v1 = g.add_operation("v1", ExecDelay::Fixed(2));
    let v2 = g.add_operation("v2", ExecDelay::Fixed(1));
    let v3 = g.add_operation("v3", ExecDelay::Fixed(5));
    let v4 = g.add_operation("v4", ExecDelay::Fixed(1));
    let s = g.source();
    g.add_dependency(s, a).expect("fresh graph");
    g.add_dependency(s, v1).expect("fresh graph");
    g.add_dependency(v1, v2).expect("fresh graph");
    g.add_dependency(a, v3).expect("fresh graph");
    g.add_dependency(v2, v4).expect("fresh graph");
    g.add_dependency(v3, v4).expect("fresh graph");
    g.add_min_constraint(s, v3, 3).expect("valid constraint");
    g.add_max_constraint(v1, v2, 5).expect("valid constraint");
    g.polarize().expect("polar");
    (g, a, [v1, v2, v3, v4])
}

/// Fig. 3(a): an anchor on the path between the endpoints of a maximum
/// constraint — ill-posed and unrepairable.
///
/// Returns the graph, the anchor, and `(v_i, v_j)`.
pub fn fig3a() -> (ConstraintGraph, VertexId, (VertexId, VertexId)) {
    let mut g = ConstraintGraph::new();
    let vi = g.add_operation("vi", ExecDelay::Fixed(1));
    let a = g.add_operation("a", ExecDelay::Unbounded);
    let vj = g.add_operation("vj", ExecDelay::Fixed(1));
    g.add_dependency(vi, a).expect("fresh graph");
    g.add_dependency(a, vj).expect("fresh graph");
    g.add_max_constraint(vi, vj, 4).expect("valid constraint");
    g.polarize().expect("polar");
    (g, a, (vi, vj))
}

/// Fig. 3(b): two independent synchronizations feeding a maximum
/// constraint — ill-posed, repairable by serializing `v_i` after `a2`
/// (which yields Fig. 3(c)).
///
/// Returns the graph, `(a1, a2)`, and `(v_i, v_j)`.
pub fn fig3b() -> (ConstraintGraph, (VertexId, VertexId), (VertexId, VertexId)) {
    let mut g = ConstraintGraph::new();
    let a1 = g.add_operation("a1", ExecDelay::Unbounded);
    let a2 = g.add_operation("a2", ExecDelay::Unbounded);
    let vi = g.add_operation("vi", ExecDelay::Fixed(1));
    let vj = g.add_operation("vj", ExecDelay::Fixed(1));
    g.add_dependency(a1, vi).expect("fresh graph");
    g.add_dependency(a2, vj).expect("fresh graph");
    g.add_max_constraint(vi, vj, 4).expect("valid constraint");
    g.polarize().expect("polar");
    (g, (a1, a2), (vi, vj))
}

/// Fig. 4 / Fig. 7: a cascade of anchors `a -> b -> v_i`, making `a`
/// redundant for `v_i`.
///
/// Returns the graph, `(a, b)`, and `v_i`.
pub fn fig4() -> (ConstraintGraph, (VertexId, VertexId), VertexId) {
    let mut g = ConstraintGraph::new();
    let a = g.add_operation("a", ExecDelay::Unbounded);
    let b = g.add_operation("b", ExecDelay::Unbounded);
    let vi = g.add_operation("vi", ExecDelay::Fixed(1));
    g.add_dependency(a, b).expect("fresh graph");
    g.add_dependency(b, vi).expect("fresh graph");
    g.polarize().expect("polar");
    (g, (a, b), vi)
}

/// Fig. 8: the irredundant-vs-redundant illustration. With
/// `v1_delay = 3` (variant (a)) anchor `a` is irredundant for `v3`; with
/// `v1_delay = 0` (variant (b)) it is dominated by `b` and redundant.
///
/// Returns the graph, `(a, b)`, and `v3`.
pub fn fig8(v1_delay: u64) -> (ConstraintGraph, (VertexId, VertexId), VertexId) {
    let mut g = ConstraintGraph::new();
    let a = g.add_operation("a", ExecDelay::Unbounded);
    let v1 = g.add_operation("v1", ExecDelay::Fixed(v1_delay));
    let b = g.add_operation("b", ExecDelay::Unbounded);
    let v3 = g.add_operation("v3", ExecDelay::Fixed(1));
    g.add_dependency(a, v1).expect("fresh graph");
    g.add_dependency(v1, v3).expect("fresh graph");
    g.add_dependency(a, b).expect("fresh graph");
    g.add_dependency(b, v3).expect("fresh graph");
    g.polarize().expect("polar");
    (g, (a, b), v3)
}

/// Fig. 10: the nine-vertex scheduling-trace example (reconstructed from
/// the paper's offset table, which it reproduces cell for cell — see the
/// `fig10` tests in `rsched-core`).
///
/// Returns the graph, the anchor `a`, and `[v1..v6]`.
pub fn fig10() -> (ConstraintGraph, VertexId, [VertexId; 6]) {
    let mut g = ConstraintGraph::new();
    let a = g.add_operation("a", ExecDelay::Unbounded);
    let v1 = g.add_operation("v1", ExecDelay::Fixed(1));
    let v2 = g.add_operation("v2", ExecDelay::Fixed(3));
    let v3 = g.add_operation("v3", ExecDelay::Fixed(1));
    let v4 = g.add_operation("v4", ExecDelay::Fixed(1));
    let v5 = g.add_operation("v5", ExecDelay::Fixed(1));
    let v6 = g.add_operation("v6", ExecDelay::Fixed(4));
    let s = g.source();
    g.add_dependency(s, a).expect("fresh graph");
    g.add_min_constraint(s, a, 1).expect("valid constraint");
    g.add_dependency(a, v1).expect("fresh graph");
    g.add_dependency(v1, v2).expect("fresh graph");
    g.add_min_constraint(v1, v3, 4).expect("valid constraint");
    g.add_min_constraint(v1, v4, 2).expect("valid constraint");
    g.add_min_constraint(s, v4, 4).expect("valid constraint");
    g.add_dependency(v4, v5).expect("fresh graph");
    g.add_dependency(s, v6).expect("fresh graph");
    g.add_min_constraint(s, v6, 8).expect("valid constraint");
    let sink = g.sink();
    g.add_dependency(v2, sink).expect("fresh graph");
    g.add_dependency(v3, sink).expect("fresh graph");
    g.add_dependency(v6, sink).expect("fresh graph");
    g.add_max_constraint(v2, v3, 1).expect("valid constraint");
    g.add_max_constraint(a, v6, 6).expect("valid constraint");
    g.add_max_constraint(v5, v6, 2).expect("valid constraint");
    g.polarize().expect("polar");
    (g, a, [v1, v2, v3, v4, v5, v6])
}

/// Fig. 12: an operation `v` gated by two anchors with offsets
/// `σ_a(v) = 2` and `σ_b(v) = 3` — the control-generation example.
///
/// Returns the graph, `(a, b)`, and `v`.
pub fn fig12() -> (ConstraintGraph, (VertexId, VertexId), VertexId) {
    let mut g = ConstraintGraph::new();
    let a = g.add_operation("a", ExecDelay::Unbounded);
    let b = g.add_operation("b", ExecDelay::Unbounded);
    let v = g.add_operation("v", ExecDelay::Fixed(1));
    g.add_min_constraint(a, v, 2).expect("valid constraint");
    g.add_min_constraint(b, v, 3).expect("valid constraint");
    g.polarize().expect("polar");
    (g, (a, b), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{check_well_posed, schedule};

    #[test]
    fn fig2_matches_table2() {
        let (g, a, [_, _, v3, v4]) = fig2();
        let omega = schedule(&g).unwrap();
        assert_eq!(omega.offset(v4, g.source()), Some(8));
        assert_eq!(omega.offset(v4, a), Some(5));
        assert_eq!(omega.offset(v3, g.source()), Some(3));
    }

    #[test]
    fn fig3_posedness() {
        let (ga, _, _) = fig3a();
        assert!(!check_well_posed(&ga).unwrap().is_well_posed());
        let (gb, _, _) = fig3b();
        assert!(!check_well_posed(&gb).unwrap().is_well_posed());
    }

    #[test]
    fn fig10_schedules_in_three_iterations() {
        let (g, _, _) = fig10();
        let omega = schedule(&g).unwrap();
        assert_eq!(omega.iterations(), 3);
        assert_eq!(omega.offset(g.sink(), g.source()), Some(12));
    }

    #[test]
    fn fig12_offsets() {
        let (g, (a, b), v) = fig12();
        let omega = schedule(&g).unwrap();
        assert_eq!(omega.offset(v, a), Some(2));
        assert_eq!(omega.offset(v, b), Some(3));
    }
}
