//! The *cascade* family: chain designs engineered to need many kernel
//! iterations.
//!
//! A cascade is a dependency chain of `n` operations whose last `links`
//! pairs carry a max constraint one unit looser than the dependency
//! between them, plus a min constraint stretching the whole chain to
//! three times its total delay. `ReadjustOffsets` can only raise one
//! cascade link per iteration, so a cold schedule pays `links + 1`
//! kernel iterations — the worst case `|E_b| + 1` bound rather than the
//! common one-pass convergence. That makes the family the workload of
//! choice wherever multi-round fixpoint behaviour matters: the schedule
//! cache bench (an expensive, structurally distinctive cold path) and
//! the frontier-compaction differential tests (several readjust rounds,
//! each retiring columns).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsched_graph::{ConstraintGraph, ExecDelay};

/// One member of the cascade family.
#[derive(Debug, Clone, Copy)]
pub struct Cascade {
    /// Operations in the dependency chain.
    pub n: usize,
    /// Trailing chain pairs that carry a tight max constraint; cold
    /// scheduling costs `links + 1` kernel iterations.
    pub links: usize,
    /// Distinguishes universe members: shifts the delay pattern.
    pub salt: u64,
}

/// Per-op delay: periodic but non-uniform, shifted by the design salt.
pub fn cascade_delay(i: usize, salt: u64) -> u64 {
    (i as u64 * 7 + 3 + salt * 5) % 23 + 1
}

/// Build a cascade design. `relabel == 0` uses the natural insertion
/// order; any other value shuffles insertion order and renames every
/// vertex, producing a structurally identical but differently labeled
/// graph (what a cache hit must see through).
///
/// # Panics
///
/// Panics if `c.links >= c.n` (the max constraints would run off the
/// front of the chain) or `c.n < 2`.
pub fn build_cascade(c: Cascade, relabel: u64) -> ConstraintGraph {
    assert!(c.n >= 2, "a cascade needs a chain");
    assert!(c.links < c.n, "links must fit inside the chain");
    let mut order: Vec<usize> = (0..c.n).collect();
    if relabel > 0 {
        let mut rng = StdRng::seed_from_u64(relabel);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
    }
    let mut g = ConstraintGraph::new();
    let mut ids = vec![None; c.n];
    for &i in &order {
        ids[i] = Some(g.add_operation(
            format!("o{relabel}_{i}"),
            ExecDelay::Fixed(cascade_delay(i, c.salt)),
        ));
    }
    let v = |i: usize| ids[i].unwrap();
    for i in 0..c.n - 1 {
        g.add_dependency(v(i), v(i + 1)).unwrap();
    }
    let total: u64 = (0..c.n).map(|i| cascade_delay(i, c.salt)).sum();
    g.add_min_constraint(v(0), v(c.n - 1), total * 3).unwrap();
    for i in (c.n - 1 - c.links)..c.n - 1 {
        g.add_max_constraint(v(i), v(i + 1), cascade_delay(i, c.salt) + 1)
            .unwrap();
    }
    g.polarize().unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_needs_links_plus_one_iterations() {
        for links in [2usize, 5] {
            let g = build_cascade(
                Cascade {
                    n: 24,
                    links,
                    salt: 3,
                },
                0,
            );
            let omega = rsched_core::schedule(&g).expect("cascades are feasible");
            assert_eq!(omega.iterations(), links + 1);
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let c = Cascade {
            n: 16,
            links: 4,
            salt: 1,
        };
        let a = rsched_core::schedule(&build_cascade(c, 0)).expect("feasible");
        let b = rsched_core::schedule(&build_cascade(c, 9)).expect("feasible");
        assert_eq!(a.iterations(), b.iterations());
    }
}
