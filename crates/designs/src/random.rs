//! Seeded random constraint graphs and designs for scaling benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rsched_graph::{ConstraintGraph, ExecDelay, VertexId};

/// Parameters for [`random_constraint_graph`].
#[derive(Debug, Clone, Copy)]
pub struct RandomGraphConfig {
    /// Number of operations (vertices besides source and sink).
    pub n_ops: usize,
    /// Probability (0–1) that an operation has unbounded delay.
    pub unbounded_prob: f64,
    /// Average number of forward dependency edges per operation.
    pub avg_deps: f64,
    /// Number of maximum timing constraints to attempt (some may be
    /// skipped to keep the graph feasible and well-posed).
    pub n_max_constraints: usize,
    /// Number of minimum timing constraints.
    pub n_min_constraints: usize,
    /// Largest fixed execution delay.
    pub max_delay: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            n_ops: 50,
            unbounded_prob: 0.15,
            avg_deps: 1.8,
            n_max_constraints: 4,
            n_min_constraints: 4,
            max_delay: 4,
        }
    }
}

/// Generates a feasible, well-posed random constraint graph.
///
/// Dependencies always run from lower to higher vertex index, keeping
/// `G_f` acyclic. Maximum constraints are placed only between vertices
/// with identical anchor sets along a dependency chain, which guarantees
/// well-posedness by construction; they are sized to exceed the chain
/// length, guaranteeing feasibility.
pub fn random_constraint_graph(seed: u64, config: &RandomGraphConfig) -> ConstraintGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ConstraintGraph::new();
    let ops: Vec<VertexId> = (0..config.n_ops)
        .map(|i| {
            let delay = if rng.gen_bool(config.unbounded_prob) {
                ExecDelay::Unbounded
            } else {
                ExecDelay::Fixed(rng.gen_range(0..=config.max_delay))
            };
            g.add_operation(format!("op{i}"), delay)
        })
        .collect();
    // Dependencies low -> high index.
    let n_edges = (config.n_ops as f64 * config.avg_deps) as usize;
    for _ in 0..n_edges {
        let i = rng.gen_range(0..config.n_ops.max(2) - 1);
        let j = rng.gen_range(i + 1..config.n_ops);
        let _ = g.add_dependency(ops[i], ops[j]);
    }
    g.polarize().expect("fresh operations polarize");

    // Minimum constraints: forward pairs.
    for _ in 0..config.n_min_constraints {
        if config.n_ops < 2 {
            break;
        }
        let i = rng.gen_range(0..config.n_ops - 1);
        let j = rng.gen_range(i + 1..config.n_ops);
        let _ = g.add_min_constraint(ops[i], ops[j], rng.gen_range(0..=config.max_delay));
    }

    // Maximum constraints: between chain-connected vertices with matching
    // anchor sets, sized generously (well-posed + feasible by
    // construction).
    let sets = rsched_core::AnchorSets::compute(&g).expect("acyclic");
    let lp = g.longest_paths_from(g.source()).expect("feasible so far");
    let mut placed = 0;
    let mut attempts = 0;
    while placed < config.n_max_constraints && attempts < config.n_max_constraints * 20 {
        attempts += 1;
        let i = rng.gen_range(0..config.n_ops.max(2) - 1);
        let j = rng.gen_range(i + 1..config.n_ops);
        let (from, to) = (ops[i], ops[j]);
        if !g.has_forward_path(from, to) || !sets.is_subset(to, from) {
            continue;
        }
        let span = lp
            .length_to(to)
            .and_then(|t| lp.length_to(from).map(|f| t - f))
            .unwrap_or(0)
            .max(0) as u64;
        let slack = rng.gen_range(0..=config.max_delay);
        let _ = g.add_max_constraint(from, to, span + slack);
        placed += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::{check_well_posed, schedule};

    #[test]
    fn random_graphs_are_well_posed_and_schedulable() {
        for seed in 0..30 {
            let g = random_constraint_graph(seed, &RandomGraphConfig::default());
            assert!(check_well_posed(&g).unwrap().is_well_posed(), "seed {seed}");
            schedule(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_constraint_graph(7, &RandomGraphConfig::default());
        let b = random_constraint_graph(7, &RandomGraphConfig::default());
        assert_eq!(a.n_vertices(), b.n_vertices());
        assert_eq!(a.n_edges(), b.n_edges());
    }

    #[test]
    fn config_scales_size() {
        let small = random_constraint_graph(
            1,
            &RandomGraphConfig {
                n_ops: 10,
                ..Default::default()
            },
        );
        let large = random_constraint_graph(
            1,
            &RandomGraphConfig {
                n_ops: 200,
                ..Default::default()
            },
        );
        assert!(large.n_vertices() > small.n_vertices());
    }
}
