//! The eight benchmark designs of the paper's Tables III and IV.
//!
//! Only the gcd HardwareC source was ever published (Fig. 13); the other
//! designs survive solely through their Table III signature (`|A| / |V|`,
//! and for the DAIO phase decoder the graph count: "there is a total of
//! nine sequencing graphs"). Each reconstruction here matches its design's
//! published `|A|`, `|V|` (and graph count where known) **exactly** —
//! asserted by tests — with a topology modelled on the design's described
//! function; the anchor-set totals and offsets then emerge from the
//! reconstruction and are compared against the paper's values in
//! EXPERIMENTS.md.

use rsched_sgraph::{Design, OpKind, SeqGraph, SeqGraphId};

/// The published Table III / Table IV row of a design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// `|A|`: anchors across the hierarchy.
    pub anchors: usize,
    /// `|V|`: vertices across the hierarchy.
    pub vertices: usize,
    /// `Σ|A(v)|` (Table III, full).
    pub total_full: usize,
    /// `Σ|IR(v)|` (Table III, minimum).
    pub total_min: usize,
    /// Max offset, full anchor sets (Table IV).
    pub max_full: i64,
    /// Sum of max offsets, full anchor sets (Table IV).
    pub sum_full: i64,
    /// Max offset, minimum anchor sets (Table IV).
    pub max_min: i64,
    /// Sum of max offsets, minimum anchor sets (Table IV).
    pub sum_min: i64,
}

/// A named benchmark: the reconstructed design plus its published numbers.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Design name as it appears in the paper's tables.
    pub name: &'static str,
    /// The reconstructed hierarchical design.
    pub design: Design,
    /// The paper's published row.
    pub paper: PaperRow,
}

/// All eight benchmarks, in the paper's table order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "traffic",
            design: traffic(),
            paper: PaperRow {
                anchors: 3,
                vertices: 8,
                total_full: 8,
                total_min: 6,
                max_full: 1,
                sum_full: 1,
                max_min: 1,
                sum_min: 1,
            },
        },
        Benchmark {
            name: "length",
            design: length(),
            paper: PaperRow {
                anchors: 5,
                vertices: 12,
                total_full: 15,
                total_min: 9,
                max_full: 2,
                sum_full: 5,
                max_min: 1,
                sum_min: 2,
            },
        },
        Benchmark {
            name: "gcd",
            design: gcd(),
            paper: PaperRow {
                anchors: 16,
                vertices: 41,
                total_full: 51,
                total_min: 32,
                max_full: 4,
                sum_full: 15,
                max_min: 2,
                sum_min: 7,
            },
        },
        Benchmark {
            name: "frisc",
            design: synth_design("frisc", 12, 164, 22, 4, 1, 13),
            paper: PaperRow {
                anchors: 34,
                vertices: 188,
                total_full: 177,
                total_min: 161,
                max_full: 12,
                sum_full: 112,
                max_min: 12,
                sum_min: 107,
            },
        },
        Benchmark {
            name: "DAIO phase decoder",
            design: synth_design("daio_decoder", 9, 26, 5, 2, 1, 0),
            paper: PaperRow {
                anchors: 14,
                vertices: 44,
                total_full: 45,
                total_min: 38,
                max_full: 2,
                sum_full: 10,
                max_min: 2,
                sum_min: 9,
            },
        },
        Benchmark {
            name: "DAIO receiver",
            design: synth_design("daio_receiver", 14, 39, 16, 2, 1, 0),
            paper: PaperRow {
                anchors: 30,
                vertices: 67,
                total_full: 76,
                total_min: 49,
                max_full: 3,
                sum_full: 16,
                max_min: 1,
                sum_min: 8,
            },
        },
        Benchmark {
            name: "DCT phase A",
            design: synth_design("dct_a", 20, 58, 21, 2, 1, 0),
            paper: PaperRow {
                anchors: 41,
                vertices: 98,
                total_full: 105,
                total_min: 87,
                max_full: 2,
                sum_full: 24,
                max_min: 1,
                sum_min: 16,
            },
        },
        Benchmark {
            name: "DCT phase B",
            design: synth_design("dct_b", 24, 66, 25, 2, 1, 0),
            paper: PaperRow {
                anchors: 49,
                vertices: 114,
                total_full: 137,
                total_min: 108,
                max_full: 2,
                sum_full: 19,
                max_min: 1,
                sum_min: 16,
            },
        },
    ]
}

/// The traffic-light controller: 1 graph, 6 operations, 2 external waits.
/// `|A| = 3`, `|V| = 8` (Table III row 1).
pub fn traffic() -> Design {
    let mut design = Design::new();
    let mut g = SeqGraph::new("traffic");
    let w_timer = g.add_op(
        "wait_timer",
        OpKind::Wait {
            signal: "timer".into(),
        },
    );
    let w_sensor = g.add_op(
        "wait_sensor",
        OpKind::Wait {
            signal: "car_sensor".into(),
        },
    );
    let green = g.add_op("green_on", OpKind::fixed(0));
    let red_off = g.add_op("red_off", OpKind::fixed(0));
    let init = g.add_op("init_lamps", OpKind::fixed(1));
    let walk_off = g.add_op("walk_off", OpKind::fixed(0));
    g.add_dependency(w_timer, green).expect("fresh graph");
    g.add_dependency(w_timer, red_off).expect("fresh graph");
    // Red must drop within 2 cycles of green rising.
    g.add_max_constraint(green, red_off, 2).expect("valid");
    let _ = (w_sensor, init, walk_off); // independent of the timer phase
    let id = design.add_graph(g);
    design.set_root(id);
    design
}

/// The pulse-length detector: 2 graphs (root + tick-counting loop body),
/// 8 operations, 3 unbounded. `|A| = 5`, `|V| = 12` (Table III row 2).
pub fn length() -> Design {
    let mut design = Design::new();
    let mut body = SeqGraph::new("length::count");
    let w_tick = body.add_op(
        "wait_tick",
        OpKind::Wait {
            signal: "clk_tick".into(),
        },
    );
    let incr = body.add_op("incr", OpKind::fixed(1));
    let check = body.add_op("check_fall", OpKind::fixed(1));
    body.add_dependency(w_tick, incr).expect("fresh graph");
    body.add_dependency(w_tick, check).expect("fresh graph");
    let body_id = design.add_graph(body);

    let mut root = SeqGraph::new("length");
    let w_rise = root.add_op(
        "wait_rise",
        OpKind::Wait {
            signal: "pulse".into(),
        },
    );
    let latch = root.add_op("latch", OpKind::fixed(1));
    let compare = root.add_op("compare", OpKind::fixed(1));
    let measure = root.add_op("measure", OpKind::Loop { body: body_id });
    let write = root.add_op("write_len", OpKind::fixed(1));
    root.add_dependency(w_rise, latch).expect("fresh graph");
    root.add_dependency(latch, compare).expect("fresh graph");
    root.add_dependency(latch, measure).expect("fresh graph");
    root.add_dependency(measure, write).expect("fresh graph");
    // The result must be written within 3 cycles of the measurement loop's
    // completion, and no earlier than 1 cycle after the comparison.
    root.add_min_constraint(compare, write, 1).expect("valid");
    let root_id = design.add_graph(root);
    design.set_root(root_id);
    design
}

/// The gcd benchmark, reconstructed at the paper's published size: a
/// bit-serial Euclid divider with 9 sequencing graphs, 23 operations and
/// 7 data-dependent loops/conditionals. `|A| = 16`, `|V| = 41`
/// (Table III row 3). The interface behaviour matches Fig. 13: restart
/// busy-wait, constrained input sampling (x exactly one cycle after y),
/// Euclid iteration, result write.
pub fn gcd() -> Design {
    let mut design = Design::new();

    // Leaf graphs of the bit-serial datapath.
    let mut cmp_body = SeqGraph::new("gcd::cmp_bit");
    let bitcmp = cmp_body.add_op("bitcmp", OpKind::fixed(1));
    let flag = cmp_body.add_op("flag", OpKind::fixed(1));
    cmp_body.add_dependency(bitcmp, flag).expect("fresh graph");
    let cmp_body_id = design.add_graph(cmp_body);

    let mut sub_body = SeqGraph::new("gcd::sub_bit");
    let bitsub = sub_body.add_op("bitsub", OpKind::fixed(1));
    let carry = sub_body.add_op("carry", OpKind::fixed(1));
    sub_body.add_dependency(bitsub, carry).expect("fresh graph");
    let sub_body_id = design.add_graph(sub_body);

    let mut fmt_body = SeqGraph::new("gcd::fmt_bit");
    let shift = fmt_body.add_op("shift", OpKind::fixed(1));
    let out = fmt_body.add_op("out_bit", OpKind::fixed(1));
    fmt_body.add_dependency(shift, out).expect("fresh graph");
    let fmt_body_id = design.add_graph(fmt_body);

    // while (x >= y) x = x - y; — bit-serial compare and subtract loops.
    let mut while_body = SeqGraph::new("gcd::while_body");
    let cmpser = while_body.add_op("cmp_serial", OpKind::Loop { body: cmp_body_id });
    let subser = while_body.add_op("sub_serial", OpKind::Loop { body: sub_body_id });
    let store = while_body.add_op("store_x", OpKind::fixed(1));
    while_body
        .add_dependency(cmpser, subser)
        .expect("fresh graph");
    while_body
        .add_dependency(subser, store)
        .expect("fresh graph");
    let while_body_id = design.add_graph(while_body);

    // repeat { while …; swap } until (y == 0);
    let mut repeat_body = SeqGraph::new("gcd::repeat_body");
    let while_loop = repeat_body.add_op(
        "while_loop",
        OpKind::Loop {
            body: while_body_id,
        },
    );
    let swap_y = repeat_body.add_op("swap_y", OpKind::fixed(1));
    let swap_x = repeat_body.add_op("swap_x", OpKind::fixed(1));
    let chk = repeat_body.add_op("check_zero", OpKind::fixed(1));
    repeat_body
        .add_dependency(while_loop, swap_y)
        .expect("fresh graph");
    repeat_body
        .add_dependency(while_loop, swap_x)
        .expect("fresh graph");
    repeat_body
        .add_dependency(swap_y, chk)
        .expect("fresh graph");
    repeat_body
        .add_dependency(swap_x, chk)
        .expect("fresh graph");
    let repeat_body_id = design.add_graph(repeat_body);

    // Conditional branches.
    let mut then_branch = SeqGraph::new("gcd::then");
    let repeat_loop = then_branch.add_op(
        "repeat_loop",
        OpKind::Loop {
            body: repeat_body_id,
        },
    );
    let _ = repeat_loop;
    let then_id = design.add_graph(then_branch);
    let else_id = design.add_graph(SeqGraph::new("gcd::else"));

    // Busy-wait body.
    let mut bw_body = SeqGraph::new("gcd::busywait_body");
    bw_body.add_op("sample_restart", OpKind::fixed(1));
    let bw_body_id = design.add_graph(bw_body);

    // Root.
    let mut root = SeqGraph::new("gcd");
    let busywait = root.add_op("busywait", OpKind::Loop { body: bw_body_id });
    let read_y = root.add_op("read_y", OpKind::Read { port: "yin".into() });
    let read_x = root.add_op("read_x", OpKind::Read { port: "xin".into() });
    let tst_y = root.add_op("tst_y", OpKind::fixed(1));
    let tst_x = root.add_op("tst_x", OpKind::fixed(1));
    let euclid = root.add_op(
        "euclid",
        OpKind::Cond {
            branches: vec![then_id, else_id],
        },
    );
    let fmtser = root.add_op("fmt_serial", OpKind::Loop { body: fmt_body_id });
    let write_res = root.add_op(
        "write_result",
        OpKind::Write {
            port: "result".into(),
        },
    );
    root.add_dependency(busywait, read_y).expect("fresh graph");
    root.add_dependency(busywait, read_x).expect("fresh graph");
    root.add_dependency(read_y, tst_y).expect("fresh graph");
    root.add_dependency(read_x, tst_x).expect("fresh graph");
    root.add_dependency(tst_y, euclid).expect("fresh graph");
    root.add_dependency(tst_x, euclid).expect("fresh graph");
    root.add_dependency(euclid, fmtser).expect("fresh graph");
    root.add_dependency(fmtser, write_res).expect("fresh graph");
    // Fig. 13's sampling constraints: x exactly one cycle after y.
    root.add_min_constraint(read_y, read_x, 1).expect("valid");
    root.add_max_constraint(read_y, read_x, 1).expect("valid");
    // The zero tests must complete within 4 cycles of each sample.
    root.add_max_constraint(read_y, tst_y, 4).expect("valid");
    let root_id = design.add_graph(root);
    design.set_root(root_id);
    design
}

/// Compiles the bundled traffic HardwareC source through `rsched-hdl`.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug, covered by
/// tests).
pub fn traffic_from_hardwarec() -> rsched_hdl::CompiledDesign {
    rsched_hdl::compile(crate::TRAFFIC_HARDWAREC).expect("bundled traffic source compiles")
}

/// Compiles the bundled pulse-length-detector HardwareC source through
/// `rsched-hdl`.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug, covered by
/// tests).
pub fn length_from_hardwarec() -> rsched_hdl::CompiledDesign {
    rsched_hdl::compile(crate::LENGTH_HARDWAREC).expect("bundled length source compiles")
}

/// Compiles the verbatim Fig. 13 HardwareC source through `rsched-hdl`.
/// (The Table III row uses [`gcd`], whose size matches the published
/// signature; the HardwareC path demonstrates the full front end.)
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug, covered by
/// tests).
pub fn gcd_from_hardwarec() -> rsched_hdl::CompiledDesign {
    rsched_hdl::compile(crate::GCD_HARDWAREC).expect("bundled gcd source compiles")
}

/// Deterministic hierarchical-design generator used for the benchmarks
/// whose sources were never published (frisc, DAIO, DCT).
///
/// Produces exactly `n_graphs` sequencing graphs, `n_ops` operations and
/// `n_unbounded` non-source anchors:
///
/// * the graphs form a branching-3 tree; child references become `Loop`
///   operations (unbounded) until the unbounded budget is spent, then
///   `Call` operations (fixed latency);
/// * leftover unbounded budget becomes external `Wait` operations spread
///   round-robin;
/// * filler operations (fixed delay `delay`) complete the op count,
///   chained in runs of `chain_run` with parallel breaks; the root's
///   first `spine` fillers form one uninterrupted chain (the critical
///   path of datapath-heavy designs like frisc);
/// * every graph with six or more operations receives one minimum and one
///   well-posed maximum timing constraint between adjacent fixed ops.
///
/// # Panics
///
/// Panics if the budget is inconsistent (fewer operations than child
/// references plus waits) — a misuse of this internal generator.
pub fn synth_design(
    name: &str,
    n_graphs: usize,
    n_ops: usize,
    n_unbounded: usize,
    chain_run: usize,
    delay: u64,
    spine: usize,
) -> Design {
    let chain_run = chain_run.max(2);
    assert!(n_graphs >= 1);
    let n_children = n_graphs - 1;
    let n_loops = n_children.min(n_unbounded);
    let n_calls = n_children - n_loops;
    let n_waits = n_unbounded - n_loops;
    let n_fillers = n_ops
        .checked_sub(n_children + n_waits)
        .expect("op budget must cover child references and waits");

    // Tree: parent(i) = (i - 1) / 3 over nodes 0..n_graphs.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_graphs];
    for i in 1..n_graphs {
        children[(i - 1) / 3].push(i);
    }
    // Ops per node: child refs + round-robin waits + round-robin fillers.
    let mut waits_at = vec![0usize; n_graphs];
    for k in 0..n_waits {
        waits_at[k % n_graphs] += 1;
    }
    let mut fillers_at = vec![0usize; n_graphs];
    for k in 0..n_fillers {
        fillers_at[k % n_graphs] += 1;
    }

    // Assign loop-vs-call per child edge in a global deterministic order:
    // the first `n_loops` child graphs are loop bodies, the rest callees.
    let _ = n_calls;
    let mut design = Design::new();
    let mut ids: Vec<Option<SeqGraphId>> = vec![None; n_graphs];
    let mut is_loop_edge = vec![false; n_graphs];
    for (assigned, flag) in is_loop_edge.iter_mut().skip(1).enumerate() {
        *flag = assigned < n_loops;
    }
    for node in (0..n_graphs).rev() {
        let mut g = SeqGraph::new(format!("{name}::g{node}"));
        let mut ops = Vec::new();
        for &child in &children[node] {
            let child_id = ids[child].expect("children built first");
            let kind = if is_loop_edge[child] {
                OpKind::Loop { body: child_id }
            } else {
                OpKind::Call { callee: child_id }
            };
            ops.push(g.add_op(format!("ref_g{child}"), kind));
        }
        for w in 0..waits_at[node] {
            ops.push(g.add_op(
                format!("wait{w}"),
                OpKind::Wait {
                    signal: format!("{name}_ev{node}_{w}"),
                },
            ));
        }
        for f in 0..fillers_at[node] {
            ops.push(g.add_op(format!("op{f}"), OpKind::fixed(delay)));
        }
        // Two layouts. IO-driven designs (no spine): hierarchy references
        // and waits run in parallel and join into the first filler, so
        // every filler is gated by every head anchor; later chain breaks
        // re-root at the join to stay inside the anchored cones.
        // Datapath-heavy designs (spine > 0, e.g. frisc): plain chains of
        // `chain_run` with parallel breaks, plus one uninterrupted spine
        // in the root — most operations see few anchors, one deep
        // critical path dominates.
        if spine > 0 {
            let spine_here = if node == 0 { spine } else { 0 };
            let n_head_ops = children[node].len() + waits_at[node];
            for k in 1..ops.len() {
                let in_spine = k > n_head_ops && k <= n_head_ops + spine_here;
                if in_spine || k % chain_run != 0 {
                    g.add_dependency(ops[k - 1], ops[k]).expect("fresh graph");
                }
            }
        } else {
            let n_heads = children[node].len() + waits_at[node];
            if n_heads > 0 && ops.len() > n_heads {
                for k in 0..n_heads {
                    g.add_dependency(ops[k], ops[n_heads]).expect("fresh graph");
                }
            }
            for k in (n_heads + 1)..ops.len() {
                if !(k - n_heads).is_multiple_of(chain_run) {
                    g.add_dependency(ops[k - 1], ops[k]).expect("fresh graph");
                } else if n_heads > 0 {
                    g.add_dependency(ops[n_heads], ops[k]).expect("fresh graph");
                }
            }
        }
        // One min and one well-posed max constraint between adjacent
        // fixed-delay ops, when available.
        let fixed_run: Vec<_> = (0..ops.len())
            .filter(|&k| {
                matches!(g.op(ops[k]).kind(), OpKind::Fixed { .. })
                    && k > 0
                    && k % chain_run != 0
                    && matches!(g.op(ops[k - 1]).kind(), OpKind::Fixed { .. })
            })
            .collect();
        if let Some(&k) = fixed_run.first() {
            g.add_max_constraint(ops[k - 1], ops[k], 3).expect("valid");
            g.add_min_constraint(ops[k - 1], ops[k], 1).expect("valid");
        }
        let id = design.add_graph(g);
        ids[node] = Some(id);
    }
    design.set_root(ids[0].expect("root built"));
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_sgraph::schedule_design;

    /// Every reconstruction matches its published `|A| / |V|` signature
    /// exactly and schedules cleanly.
    #[test]
    fn signatures_match_table3() {
        for bench in all_benchmarks() {
            let scheduled =
                schedule_design(&bench.design).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            let stats = scheduled.anchor_stats();
            assert_eq!(stats.n_anchors, bench.paper.anchors, "{} |A|", bench.name);
            assert_eq!(stats.n_vertices, bench.paper.vertices, "{} |V|", bench.name);
        }
    }

    /// Redundancy removal shrinks (or preserves) the totals and offsets on
    /// every design — the qualitative claim of Tables III and IV.
    #[test]
    fn redundancy_removal_always_helps() {
        for bench in all_benchmarks() {
            let scheduled = schedule_design(&bench.design).unwrap();
            let stats = scheduled.anchor_stats();
            assert!(
                stats.total_irredundant <= stats.total_full,
                "{}: IR total grew",
                bench.name
            );
            assert!(
                stats.sum_max_offsets_min <= stats.sum_max_offsets_full,
                "{}: IR offsets grew",
                bench.name
            );
            assert!(stats.max_offset_min <= stats.max_offset_full);
        }
    }

    /// The DAIO phase decoder's graph count is stated in the paper.
    #[test]
    fn daio_decoder_has_nine_graphs() {
        let bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "DAIO phase decoder")
            .unwrap();
        assert_eq!(bench.design.n_graphs(), 9);
    }

    /// traffic reproduces Table III exactly: 8 -> 6 with averages
    /// 1.00 -> 0.75.
    #[test]
    fn traffic_matches_table3_exactly() {
        let scheduled = schedule_design(&traffic()).unwrap();
        let stats = scheduled.anchor_stats();
        assert_eq!(stats.total_full, 8);
        assert_eq!(stats.total_irredundant, 6);
        assert!((stats.avg_full() - 1.0).abs() < 1e-9);
        assert!((stats.avg_irredundant() - 0.75).abs() < 1e-9);
        // Table IV: Max 1 / Sum 1, unchanged by minimization.
        assert_eq!(stats.max_offset_full, 1);
        assert_eq!(stats.sum_max_offsets_full, 1);
        assert_eq!(stats.max_offset_min, 1);
        assert_eq!(stats.sum_max_offsets_min, 1);
    }

    /// length reproduces Table III exactly: 15 -> 9.
    #[test]
    fn length_matches_table3_exactly() {
        let scheduled = schedule_design(&length()).unwrap();
        let stats = scheduled.anchor_stats();
        assert_eq!(stats.total_full, 15);
        assert_eq!(stats.total_irredundant, 9);
    }

    /// The HardwareC gcd compiles and schedules.
    #[test]
    fn hardwarec_gcd_pipeline() {
        let compiled = gcd_from_hardwarec();
        let scheduled = schedule_design(&compiled.design).unwrap();
        assert_eq!(scheduled.graph_schedules().len(), 6);
    }

    #[test]
    fn hardwarec_traffic_and_length_pipelines() {
        for (compiled, constrained) in [
            (traffic_from_hardwarec(), true),
            (length_from_hardwarec(), false),
        ] {
            let scheduled = schedule_design(&compiled.design).unwrap();
            let stats = scheduled.anchor_stats();
            assert!(stats.n_anchors >= 2);
            assert!(stats.total_irredundant <= stats.total_full);
            if constrained {
                // The traffic description carries a max constraint.
                let root = compiled.design.root().unwrap();
                assert_eq!(
                    compiled.design.graph(root).unwrap().max_constraints().len(),
                    1
                );
            }
        }
    }

    #[test]
    fn synth_design_budget_is_exact() {
        let design = synth_design("probe", 5, 30, 7, 4, 1, 0);
        assert_eq!(design.n_graphs(), 5);
        let total_ops: usize = design.graphs().iter().map(|g| g.n_ops()).sum();
        assert_eq!(total_ops, 30);
        let scheduled = schedule_design(&design).unwrap();
        let stats = scheduled.anchor_stats();
        assert_eq!(stats.n_anchors, 5 + 7);
        assert_eq!(stats.n_vertices, 30 + 10);
    }
}
