/* A pulse-length detector in the style of the paper's `length`
 * benchmark: wait for the pulse to rise, count clock ticks until it
 * falls, and publish the count. */
process length (pulse, tick, len)
    in port pulse, tick;
    out port len[8];
    boolean count[8], done;

    /* wait for the rising edge */
    while (!pulse)
        ;

    count = 0;

    /* one tick per loop iteration until the pulse falls */
    repeat {
        while (tick)
            ;
        count = count + 1;
        done = !pulse;
    } until (done == 1);

    write len = count;
