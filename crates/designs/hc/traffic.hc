/* A traffic-light controller in the style of the paper's `traffic`
 * benchmark: the main phase machine synchronizes on a timer expiry and a
 * car sensor, with a bounded gap between the light updates. */
process traffic (timer, sensor, lights, walk)
    in port timer, sensor;
    out port lights[2], walk;
    boolean phase[2], req;
    tag g, r;

    /* wait for the green-phase timer to expire */
    while (timer)
        ;

    /* sample the cross-street sensor and advance the phase */
    req = read(sensor);
    phase = phase + 1;

    /* drive the lights: red must drop within 2 cycles of green rising */
    {
        constraint maxtime from g to r = 2 cycles;
        g: write lights = phase;
        r: write walk = req;
    }
