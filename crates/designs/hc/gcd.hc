/* The greatest-common-divisor benchmark of Ku & De Micheli, Fig. 13.
 * Timing constraints force x to be sampled exactly one clock cycle after
 * the sampling of y. */
process gcd (xin, yin, restart, result)
    in port xin[8], yin[8], restart;
    out port result[8];
    boolean x[8], y[8];
    tag a, b;

    /* wait for restart to go low */
    while (restart)
        ;

    /* sample inputs */
    {
        constraint mintime from a to b = 1 cycles;
        constraint maxtime from a to b = 1 cycles;
        a: y = read(yin);
        b: x = read(xin);
    }

    /* Euclid's algorithm */
    if ((x != 0) & (y != 0)) {
        repeat {
            while (x >= y)
                x = x - y;
            /* swap values */
            < y = x; x = y; >
        } until (y == 0);
    }

    /* write result to output */
    write result = x;
