//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the tiny API subset it actually uses: a seedable
//! RNG ([`rngs::StdRng`]), [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`Rng::gen`] for a few primitive types. The
//! generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! deterministic, and dependency-free. It does **not** promise
//! stream-compatibility with the real `rand` crate, only the same API
//! shape and statistical sanity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges [`Rng::gen_range`] accepts (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased-enough multiply-shift reduction of `x` into `0..span`
/// (`span == 0` means the full 64-bit domain).
fn reduce(x: u64, span: u64) -> u64 {
    if span == 0 {
        x
    } else {
        ((x as u128 * span as u128) >> 64) as u64
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic default generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference seeding.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7); // unrelated
                a.gen_range(0u64..1000) == c.gen_range(0u64..1000)
            })
            .count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
