//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the benchmarking API subset its benches use:
//! [`Criterion`] with `sample_size` / `warm_up_time` / `measurement_time`,
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a straightforward warm-up + sampled wall-clock loop with
//! mean/min/max reporting — no statistics engine, plots, or saved
//! baselines. Results are also recorded on the [`Criterion`] instance so a
//! custom `main` can export them (see [`Criterion::take_results`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark, exposed through [`Criterion::take_results`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name as passed to [`Criterion::benchmark_group`].
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the untimed warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the total timed duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Drains the results recorded so far (for custom `main` exporters).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`]
/// (accepted for API compatibility; the shim times each call
/// individually either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per sample.
    SmallInput,
    /// Inputs are large; batch few per sample.
    LargeInput,
    /// One input per sample.
    PerIteration,
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            measured: None,
        };
        f(&mut bencher, input);
        self.record(id, bencher.measured);
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (prints nothing extra; results were reported per
    /// benchmark).
    pub fn finish(self) {}

    fn record(&mut self, id: BenchmarkId, measured: Option<Measured>) {
        let Some(m) = measured else {
            eprintln!("{}/{}: no measurement taken", self.name, id.id);
            return;
        };
        println!(
            "{}/{:<40} time: [{} {} {}] ({} iters)",
            self.name,
            id.id,
            fmt_ns(m.min_ns),
            fmt_ns(m.mean_ns),
            fmt_ns(m.max_ns),
            m.iterations,
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id: id.id,
            mean_ns: m.mean_ns,
            min_ns: m.min_ns,
            max_ns: m.max_ns,
            iterations: m.iterations,
        });
    }
}

#[derive(Debug, Clone, Copy)]
struct Measured {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

/// Times a routine (subset of `criterion::Bencher`).
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    measured: Option<Measured>,
}

impl Bencher {
    /// Times `routine`, amortizing over batched iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() / warm_iters as u128).max(1);

        let sample_budget_ns = (self.measurement.as_nanos() / self.sample_size as u128).max(1);
        let iters_per_sample = ((sample_budget_ns / per_iter_ns).max(1)) as u64;

        let mut total_ns: u128 = 0;
        let mut total_iters: u64 = 0;
        let (mut min_ns, mut max_ns) = (f64::INFINITY, 0f64);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos();
            let per = ns as f64 / iters_per_sample as f64;
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
            total_ns += ns;
            total_iters += iters_per_sample;
        }
        self.measured = Some(Measured {
            mean_ns: total_ns as f64 / total_iters as f64,
            min_ns,
            max_ns,
            iterations: total_iters,
        });
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }

        // Measure each call individually until the budget is spent, with
        // the sample count as a floor so short budgets still sample.
        let budget = self.measurement;
        let mut timed_ns: u128 = 0;
        let mut iters: u64 = 0;
        let (mut min_ns, mut max_ns) = (f64::INFINITY, 0f64);
        while timed_ns < budget.as_nanos() || iters < self.sample_size as u64 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let ns = t.elapsed().as_nanos();
            min_ns = min_ns.min(ns as f64);
            max_ns = max_ns.max(ns as f64);
            timed_ns += ns;
            iters += 1;
        }
        self.measured = Some(Measured {
            mean_ns: timed_ns as f64 / iters as f64,
            min_ns,
            max_ns,
            iterations: iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// One extra scalar field in a [`SummaryWriter`] header.
#[derive(Debug, Clone)]
enum Field {
    Str(String),
    Int(i64),
    Num(f64),
}

/// Renders `BENCH_*.json` summaries stamped with provenance metadata.
///
/// Every summary leads with the benchmark name, the commit hash, and the
/// thread count, so artifacts checked into the repository say exactly
/// what produced them. The commit is resolved from `RSCHED_COMMIT`, then
/// `GITHUB_SHA` (CI), then `git rev-parse --short HEAD`, falling back to
/// `"unknown"` outside a checkout.
///
/// ```no_run
/// # use criterion::SummaryWriter;
/// SummaryWriter::new("kernel_schedule")
///     .threads(8)
///     .metric("speedup", 2.5)
///     .write("BENCH_kernel.json", &[])
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SummaryWriter {
    fields: Vec<(String, Field)>,
}

impl SummaryWriter {
    /// Starts a summary for the benchmark `bench`, stamping the commit.
    pub fn new(bench: impl Into<String>) -> SummaryWriter {
        SummaryWriter {
            fields: vec![
                ("bench".to_owned(), Field::Str(bench.into())),
                ("commit".to_owned(), Field::Str(commit_hash())),
            ],
        }
    }

    /// Stamps the worker-thread count the benchmark ran with.
    pub fn threads(self, threads: usize) -> SummaryWriter {
        self.int("threads", threads as i64)
    }

    /// Adds a string header field.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> SummaryWriter {
        self.fields.push((key.into(), Field::Str(value.into())));
        self
    }

    /// Adds an integer header field.
    pub fn int(mut self, key: impl Into<String>, value: i64) -> SummaryWriter {
        self.fields.push((key.into(), Field::Int(value)));
        self
    }

    /// Adds a floating-point header field (non-finite values render as
    /// `null`).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> SummaryWriter {
        self.fields.push((key.into(), Field::Num(value)));
        self
    }

    /// Renders the summary (header fields, then `"results"`) as one JSON
    /// object.
    pub fn render(&self, results: &[BenchResult]) -> String {
        let mut out = String::from("{");
        for (key, value) in &self.fields {
            out.push_str(&json_str(key));
            out.push(':');
            match value {
                Field::Str(s) => out.push_str(&json_str(s)),
                Field::Int(i) => out.push_str(&i.to_string()),
                Field::Num(n) => out.push_str(&json_num(*n)),
            }
            out.push(',');
        }
        out.push_str("\"results\":[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"group\":{},\"id\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iterations\":{}}}",
                json_str(&r.group),
                json_str(&r.id),
                json_num(r.mean_ns),
                json_num(r.min_ns),
                json_num(r.max_ns),
                r.iterations,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the rendered summary (plus a trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(
        &self,
        path: impl AsRef<std::path::Path>,
        results: &[BenchResult],
    ) -> std::io::Result<()> {
        std::fs::write(path, self.render(results) + "\n")
    }
}

fn commit_hash() -> String {
    for var in ["RSCHED_COMMIT", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_owned();
            if !v.is_empty() {
                return v;
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else {
        "null".to_owned()
    }
}

/// Bundles benchmark functions with a configuration into one group
/// function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        {
            let mut group = c.benchmark_group("smoke");
            group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.bench_with_input(BenchmarkId::from_parameter("batched"), &(), |b, ()| {
                b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
            });
            group.finish();
        }
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.mean_ns > 0.0 && r.iterations > 0));
        assert!(results
            .iter()
            .all(|r| r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns));
    }

    #[test]
    fn summary_writer_stamps_provenance() {
        let results = vec![BenchResult {
            group: "g".to_owned(),
            id: "kernel/rand_800".to_owned(),
            mean_ns: 1.5,
            min_ns: 1.0,
            max_ns: f64::INFINITY,
            iterations: 10,
        }];
        let json = SummaryWriter::new("kernel_schedule")
            .threads(8)
            .tag("largest_design", "rand_800")
            .metric("speedup", 2.5)
            .int("designs", 3)
            .render(&results);
        assert!(json.starts_with("{\"bench\":\"kernel_schedule\",\"commit\":\""));
        assert!(json.contains("\"threads\":8"));
        assert!(json.contains("\"largest_design\":\"rand_800\""));
        assert!(json.contains("\"speedup\":2.5"));
        assert!(json.contains("\"designs\":3"));
        assert!(json.contains("\"id\":\"kernel/rand_800\""));
        assert!(json.contains("\"max_ns\":null"), "non-finite renders null");
        // The commit stamp is never empty — at worst it is "unknown".
        assert!(!json.contains("\"commit\":\"\""));
    }

    #[test]
    fn summary_writer_escapes_strings() {
        let json = SummaryWriter::new("a\"b\\c\nd").render(&[]);
        assert!(json.contains(r#""bench":"a\"b\\c\nd""#));
    }
}
