//! The incremental re-scheduling session.
//!
//! A [`Session`] owns a polar [`ConstraintGraph`] together with every
//! analysis the scheduler needs — the anchor-set family, a per-anchor
//! [`ReachCache`] over the full graph, and the current minimum
//! [`RelativeSchedule`] — and keeps them consistent across **edits**:
//! adding a sequencing dependency or timing constraint, removing an edge,
//! or switching an operation between fixed and unbounded delay.
//!
//! # How incrementality works
//!
//! The iterative scheduler (`IncrementalOffset` + `ReadjustOffsets`,
//! §IV-E of the paper) is monotone: offsets only ever increase, and from
//! any pointwise *lower bound* of the new minimum schedule it converges to
//! the same unique fixpoint as a cold run, within the same `|E_b| + 1`
//! budget. The session exploits this by re-seeding
//! [`rsched_core::reschedule`] with the previous offsets wherever they are
//! still known to be lower bounds:
//!
//! - **Additive edits** (new edge or constraint) only raise minimum
//!   offsets, so *every* previously scheduled anchor column stays a valid
//!   seed.
//! - **Subtractive edits** (edge removal, delay change) can lower
//!   offsets, but only for anchors whose longest paths cross the edited
//!   element. The [`ReachCache`] answers exactly that question — an
//!   anchor that does not reach the edited vertex keeps verbatim offsets
//!   — so only the *dirty* anchors (those reaching it) restart from zero.
//!
//! Dirty anchors accumulate across edits while the graph is ill-posed or
//! unfeasible (no schedule exists to refresh the cache) and are cleared
//! whenever a reschedule succeeds.
//!
//! # Verdict fidelity
//!
//! Every edit re-classifies the graph exactly as a cold
//! [`rsched_core::schedule`] would, without paying for the full analysis:
//! anchor sets are recomputed (one cheap sweep), the Theorem 2 containment
//! check is re-evaluated *only* on backward edges whose endpoint anchor
//! sets changed, and the expensive positive-cycle check runs only when a
//! violation was found (to order `Unfeasible` before `IllPosed` like the
//! cold path) or when the warm iteration exhausts its budget (which, for
//! a containment-clean graph, implies a positive cycle).

use std::collections::{BTreeMap, BTreeSet};

use rsched_core::{
    check_well_posed_with, relax_additive, reschedule_on, schedule_with_sets_on, start_times,
    update_start_times, verify_start_times, AnchorSets, DelayProfile, IllPosedEdge,
    RelativeSchedule, ScheduleError, StartTimes, WellPosedness,
};
use rsched_graph::{
    ConstraintGraph, EdgeId, ExecDelay, GraphError, ReachCache, ScheduleKernel, VertexId,
};

/// Structured result of one session edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOutcome {
    /// The edit was a no-op (e.g. re-setting an unchanged delay); all
    /// cached analyses remain valid.
    Unchanged,
    /// The graph is well-posed and was rescheduled.
    Rescheduled {
        /// Fixpoint iterations the warm run needed.
        iterations: usize,
        /// Anchor columns seeded from the previous schedule.
        warm_anchors: usize,
        /// Total anchors in the new schedule.
        total_anchors: usize,
    },
    /// The graph is now ill-posed: some maximum constraint depends on an
    /// unshared unbounded delay (Theorem 2). The previous schedule is
    /// kept but stale.
    IllPosed {
        /// One witness per violating backward edge, in edge order —
        /// identical to [`rsched_core::check_well_posed`].
        violations: Vec<IllPosedEdge>,
    },
    /// The constraints are now unfeasible: a positive cycle exists even
    /// with unbounded delays at zero (Theorem 1).
    Unfeasible {
        /// A vertex on or reachable from the positive cycle — identical
        /// to the cold scheduler's witness.
        witness: VertexId,
    },
    /// The edit itself was invalid (unknown vertex, forward cycle, …);
    /// the graph and all caches are untouched.
    Rejected {
        /// The structural error.
        error: GraphError,
    },
}

impl EditOutcome {
    /// `true` when the session holds a fresh schedule after this edit.
    pub fn is_scheduled(&self) -> bool {
        matches!(
            self,
            EditOutcome::Rescheduled { .. } | EditOutcome::Unchanged
        )
    }
}

/// Counters describing the work a session performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Edits that mutated the graph.
    pub edits: usize,
    /// Edits rejected with a [`GraphError`].
    pub rejected: usize,
    /// Edits that were no-ops.
    pub noops: usize,
    /// Successful (warm or cold) scheduling runs.
    pub reschedules: usize,
    /// Anchor columns seeded from a previous schedule, summed over runs.
    pub warm_anchor_columns: usize,
    /// Anchor columns that started cold, summed over runs.
    pub cold_anchor_columns: usize,
    /// Fixpoint iterations, summed over successful runs.
    pub iterations: usize,
    /// Edits that left the graph ill-posed.
    pub ill_posed: usize,
    /// Edits that left the graph unfeasible.
    pub unfeasible: usize,
    /// Backward edges whose containment check was actually re-evaluated
    /// (the rest were served from the violation cache).
    pub containment_checks: usize,
}

/// Zero-profile start times of the current schedule, kept so additive
/// edits can certify feasibility in `O(1)` when no offset moved.
#[derive(Debug, Clone)]
struct ZeroCertificate {
    times: StartTimes,
    /// `times` satisfy every edge inequality — i.e. the graph was proven
    /// free of positive cycles when `current` was accepted. `false` on the
    /// degenerate accept path (feasible graph that lost polarity).
    valid: bool,
}

/// An incremental re-scheduling session over one constraint graph.
#[derive(Debug, Clone)]
pub struct Session {
    graph: ConstraintGraph,
    /// CSR snapshot of `graph`; all full fixpoint runs execute against
    /// it. Edits mark it stale and it is rebuilt lazily on the next
    /// [`Session::run_schedule`] — the additive fast path repairs the
    /// schedule by a worklist walk of the (already-updated) adjacency
    /// lists and never pays the rebuild.
    kernel: ScheduleKernel,
    /// `false` after a mutation until the snapshot is rebuilt.
    kernel_fresh: bool,
    sets: AnchorSets,
    reach: ReachCache,
    /// Worker threads fanned over anchor columns per scheduling run.
    threads: usize,
    /// Most recent successful schedule; stale while ill-posed/unfeasible.
    current: Option<RelativeSchedule>,
    /// Zero-profile start times of `current` (refreshed on every accept).
    zero_times: Option<ZeroCertificate>,
    /// Anchors whose column in `current` may exceed the new minimum.
    dirty: BTreeSet<VertexId>,
    /// Cached Theorem 2 violations, keyed by backward edge.
    violations: BTreeMap<EdgeId, IllPosedEdge>,
    posedness: WellPosedness,
    stats: SessionStats,
}

impl Session {
    /// Opens a session on `graph`, polarizing it if necessary, and runs
    /// the initial analysis + schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] only for structural failures (a cyclic
    /// forward graph); ill-posed or unfeasible graphs open fine — the
    /// verdict is reported by [`Session::posedness`] and the session can
    /// be edited toward well-posedness.
    pub fn open(graph: ConstraintGraph) -> Result<Session, ScheduleError> {
        Session::open_with_seed(graph, None)
    }

    /// [`Session::open`] with an optional schedule seed: a minimum
    /// schedule previously computed for this exact graph (a canonical-form
    /// cache hit, or a journal snapshot's saved analysis).
    ///
    /// The seed is **verified before installation** — its tracked family
    /// must equal the freshly computed anchor sets and its zero-profile
    /// start times must satisfy every edge (the same feasibility
    /// certificate the cold path computes) — and on success the session
    /// skips only the fixpoint iteration itself. Every other analysis
    /// (anchor sets, kernel, reachability, containment) is recomputed, so
    /// the resulting session state is bit-identical to a cold open. A seed
    /// that fails verification is silently discarded and the cold path
    /// runs instead.
    pub fn open_with_seed(
        mut graph: ConstraintGraph,
        seed: Option<RelativeSchedule>,
    ) -> Result<Session, ScheduleError> {
        if !graph.is_polar() {
            graph.polarize().map_err(ScheduleError::Graph)?;
        }
        let sets = AnchorSets::compute(&graph)?;
        let kernel = ScheduleKernel::build(&graph).map_err(ScheduleError::Graph)?;
        let reach = ReachCache::compute(&graph, sets.family().anchors().iter().copied());
        let mut session = Session {
            graph,
            kernel,
            kernel_fresh: true,
            sets,
            reach,
            threads: 1,
            current: None,
            zero_times: None,
            dirty: BTreeSet::new(),
            violations: BTreeMap::new(),
            posedness: WellPosedness::WellPosed,
            stats: SessionStats::default(),
        };
        // Full containment scan once at open; edits maintain it
        // incrementally afterwards.
        for (id, e) in session.graph.backward_edges() {
            session.stats.containment_checks += 1;
            if !session.sets.is_subset(e.from(), e.to()) {
                session.violations.insert(
                    id,
                    IllPosedEdge {
                        from: e.from(),
                        to: e.to(),
                        missing: session.sets.family().difference(e.from(), e.to()),
                    },
                );
            }
        }
        if let Some(seed) = seed {
            if session.try_install_seed(seed) {
                return Ok(session);
            }
        }
        session.classify_and_run();
        Ok(session)
    }

    /// Installs a pre-computed minimum schedule in place of the opening
    /// fixpoint run, if it verifies against the fresh analyses. Returns
    /// `false` (leaving the session ready for the cold path) when the
    /// graph is not cleanly well-posed, the seed's tracked family differs
    /// from the computed sets, or the zero-profile certificate fails.
    fn try_install_seed(&mut self, seed: RelativeSchedule) -> bool {
        if !self.violations.is_empty() || seed.tracked_sets() != self.sets.family() {
            return false;
        }
        let zeros = DelayProfile::zeros(&self.graph);
        let Ok(times) = start_times(&self.graph, &seed, &zeros) else {
            return false;
        };
        if !verify_start_times(&self.graph, &times, &zeros).is_empty() {
            return false;
        }
        self.zero_times = Some(ZeroCertificate { times, valid: true });
        self.accept(seed, 0);
        true
    }

    /// The graph in its current (edited) state.
    pub fn graph(&self) -> &ConstraintGraph {
        &self.graph
    }

    /// The current anchor sets.
    pub fn anchor_sets(&self) -> &AnchorSets {
        &self.sets
    }

    /// The current minimum schedule; `None` until the graph has been
    /// well-posed at least once, and **stale** while
    /// [`Session::posedness`] is not `WellPosed`.
    pub fn schedule(&self) -> Option<&RelativeSchedule> {
        self.current.as_ref()
    }

    /// The current well-posedness verdict.
    pub fn posedness(&self) -> &WellPosedness {
        &self.posedness
    }

    /// Work counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Worker threads fanned over anchor columns per scheduling run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread count for subsequent scheduling runs.
    /// Anchor columns are independent within each fixpoint phase and
    /// violation flags are joined by a commutative OR, so every offset,
    /// iteration count, and verdict is identical for any count; values
    /// below 1 are clamped to 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Finds an operation by name.
    pub fn vertex_named(&self, name: &str) -> Option<VertexId> {
        self.graph
            .vertex_ids()
            .find(|&v| self.graph.vertex(v).name() == name)
    }

    /// Finds a live edge by endpoints (first match in edge order).
    pub fn edge_between(&self, from: VertexId, to: VertexId) -> Option<EdgeId> {
        self.graph
            .edges()
            .find(|(_, e)| e.from() == from && e.to() == to)
            .map(|(id, _)| id)
    }

    /// Adds a sequencing dependency `from -> to` (weighted by `from`'s
    /// execution delay) and reschedules.
    pub fn add_dependency(&mut self, from: VertexId, to: VertexId) -> EditOutcome {
        match self.graph.add_dependency(from, to) {
            Ok(id) => self.after_additive_edit(id),
            Err(error) => self.reject(error),
        }
    }

    /// Adds a minimum timing constraint (`to` starts at least `min`
    /// cycles after `from` starts) and reschedules.
    pub fn add_min_constraint(&mut self, from: VertexId, to: VertexId, min: u64) -> EditOutcome {
        match self.graph.add_min_constraint(from, to, min) {
            Ok(id) => self.after_additive_edit(id),
            Err(error) => self.reject(error),
        }
    }

    /// Adds a maximum timing constraint (`to` starts at most `max`
    /// cycles after `from` starts) and reschedules. This inserts a
    /// backward edge, so the edit may render the graph ill-posed or
    /// unfeasible — the outcome says which, with the same witnesses a
    /// cold analysis would report.
    pub fn add_max_constraint(&mut self, from: VertexId, to: VertexId, max: u64) -> EditOutcome {
        match self.graph.add_max_constraint(from, to, max) {
            Ok(id) => self.after_additive_edit(id),
            Err(error) => self.reject(error),
        }
    }

    /// Removes an edge (dependency or constraint) and reschedules.
    /// Anchors whose longest paths crossed the edge restart cold; all
    /// others keep their offsets verbatim.
    pub fn remove_edge(&mut self, id: EdgeId) -> EditOutcome {
        let edge = match self.graph.remove_edge(id) {
            Ok(e) => e,
            Err(error) => return self.reject(error),
        };
        // Rows that reached the tail are recomputed (the edge is gone from
        // the adjacency lists already); exactly those anchors are dirty.
        let touched = self.reach.notify_removal(&self.graph, edge.from());
        self.dirty.extend(touched);
        self.violations.remove(&id);
        self.after_edit()
    }

    /// Switches an operation between fixed and unbounded execution delay,
    /// re-weighting its outgoing edges, and reschedules. Returns
    /// [`EditOutcome::Unchanged`] when the delay is already `delay`.
    pub fn set_delay(&mut self, v: VertexId, delay: ExecDelay) -> EditOutcome {
        match self.graph.set_delay(v, delay) {
            Ok(false) => {
                self.stats.noops += 1;
                EditOutcome::Unchanged
            }
            Ok(true) => {
                // Out-edge weights changed and v's anchor-hood may have
                // flipped; every anchor reaching v is dirty (reachability
                // itself is untouched — no edges were added or removed).
                let touched = self.reach.sources_reaching(v);
                self.dirty.extend(touched);
                self.dirty.insert(v);
                self.after_edit()
            }
            Err(error) => self.reject(error),
        }
    }

    fn reject(&mut self, error: GraphError) -> EditOutcome {
        self.stats.rejected += 1;
        EditOutcome::Rejected { error }
    }

    /// Rebuilds the CSR snapshot if a mutation left it stale. Called on
    /// the full-fixpoint path only, so a burst of fast-path edits pays
    /// for at most one rebuild, when a sweep actually needs the
    /// snapshot. The guarded mutators preserve forward acyclicity, so
    /// the rebuild cannot fail.
    fn refresh_kernel(&mut self) {
        if !self.kernel_fresh {
            self.kernel = ScheduleKernel::build(&self.graph)
                .expect("edit mutators preserve forward acyclicity");
            self.kernel_fresh = true;
        }
    }

    /// Post-edit path for pure additions: previous offsets remain lower
    /// bounds for every anchor (constraints only push offsets up), so the
    /// dirty set does not grow — and when the edit also leaves every
    /// anchor set untouched (the common case), the previous fixpoint is
    /// repaired in place by a worklist relaxation of the new edge alone
    /// instead of a full re-analysis.
    fn after_additive_edit(&mut self, id: EdgeId) -> EditOutcome {
        self.stats.edits += 1;
        self.kernel_fresh = false;
        let edge = *self.graph.edge(id);
        self.reach
            .notify_add_edge(&self.graph, edge.from(), edge.to());

        // Incremental set maintenance: an addition never changes the
        // anchor roster, it can only grow per-vertex sets downstream of
        // the new edge's head.
        let changed = self.sets.notify_add_edge(&self.graph, id);

        // Containment verdicts are stable except on backward edges that
        // touch a grown set — or the new edge itself, when backward.
        if !changed.is_empty() || !edge.is_forward() {
            let mut is_changed = vec![false; self.graph.n_vertices()];
            for &v in &changed {
                is_changed[v.index()] = true;
            }
            self.recheck_containment(|eid, e| {
                is_changed[e.from().index()] || is_changed[e.to().index()] || eid == id
            });
        }

        if self.violations.is_empty() {
            if let Some(outcome) = self.try_fast_additive(id, &changed) {
                return outcome;
            }
        }
        self.classify_and_run()
    }

    /// The additive fast path: repair the current fixpoint by relaxing
    /// only the new edge's cone (plus any vertices whose anchor sets
    /// grew). Applicable when the previous schedule is fresh (well-posed,
    /// no dirty anchors); returns `None` to fall back to the general
    /// (warm full-sweep) path.
    fn try_fast_additive(&mut self, id: EdgeId, changed: &[VertexId]) -> Option<EditOutcome> {
        if !self.dirty.is_empty() || !matches!(self.posedness, WellPosedness::WellPosed) {
            return None;
        }
        let prev = self.current.as_ref()?;
        // Additive edits never change the roster; anything else means the
        // cached schedule is out of sync with the session family.
        if prev.tracked_sets().anchors() != self.sets.family().anchors()
            || (changed.is_empty() && prev.tracked_sets() != self.sets.family())
        {
            return None;
        }
        // Fault-injection site (see `classify_and_run`): after the early
        // returns so a fallback edit counts one hit, before the take so a
        // panic leaves the cached schedule intact.
        let _ = rsched_graph::failpoint!("session::reschedule");
        // Relax in place — cloning the |V| × |A| offset matrix would cost
        // as much as the relaxation itself on large designs. The
        // adjacency-walking variant (not `relax_additive_on`): the cone
        // of one edge is far smaller than the CSR rebuild the kernel
        // variant would need first.
        let mut omega = self.current.take().expect("checked above");
        let raised = match relax_additive(&self.graph, self.sets.family(), &mut omega, id, changed)
        {
            Ok(raised) => raised,
            // Relaxation diverged: positive cycle (or an adversarial
            // schedule order exhausting the pop budget). The in-place
            // offsets were over-raised past any minimum, so the warm
            // caches are unusable — drop them and classify through the
            // authoritative (cold) path.
            Err(_) => {
                self.zero_times = None;
                return None;
            }
        };
        let warm = omega.anchors().len();

        // Feasibility certificate, as in the general path but incremental.
        // The perturbed region is where offsets rose or sets grew; outside
        // it the cached zero-profile start times are still exact.
        let mut cone = raised;
        for &v in changed {
            if !cone.contains(&v) {
                cone.push(v);
            }
        }
        if cone.is_empty() {
            // No offset moved: the cached times still satisfy every old
            // edge (when they certified), so only the new edge needs
            // checking — an O(1) certificate.
            let cached_ok = self.zero_times.as_ref().is_some_and(|c| {
                let e = self.graph.edge(id);
                c.valid
                    && (c.times.time(e.to()) as i64)
                        >= c.times.time(e.from()) as i64 + e.weight().zeroed()
            });
            if cached_ok {
                return Some(self.accept(omega, warm));
            }
        }
        let zeros = DelayProfile::zeros(&self.graph);
        let certificate = match &self.zero_times {
            // Worklist re-evaluation from the cached (exact) times, then a
            // full-but-cheap O(|E|) verification sweep.
            Some(c) => {
                let (times, _) = update_start_times(&self.graph, &omega, &zeros, &c.times, &cone);
                let valid = verify_start_times(&self.graph, &times, &zeros).is_empty();
                Some(ZeroCertificate { times, valid })
            }
            None => start_times(&self.graph, &omega, &zeros).ok().map(|times| {
                let valid = verify_start_times(&self.graph, &times, &zeros).is_empty();
                ZeroCertificate { times, valid }
            }),
        };
        match &certificate {
            Some(c) if c.valid => {
                self.zero_times = certificate;
                Some(self.accept(omega, warm))
            }
            _ => match check_well_posed_with(&self.graph, &self.sets) {
                WellPosedness::Unfeasible { witness } => {
                    // `omega` converged, so it is still the exact minimum
                    // of the (per-anchor) tracked system — keep it (and
                    // its exact times) as the stale warm cache, like the
                    // general path keeps its previous schedule.
                    self.current = Some(omega);
                    self.zero_times = certificate;
                    Some(self.mark_unfeasible(witness))
                }
                // Feasible but degenerate (lost polarity): the relaxed
                // fixpoint is still the minimum schedule — accept it.
                WellPosedness::WellPosed => {
                    self.zero_times = certificate;
                    Some(self.accept(omega, warm))
                }
                verdict @ WellPosedness::IllPosed { .. } => {
                    unreachable!("containment cache disagrees: {verdict:?}")
                }
            },
        }
    }

    /// Post-edit path for subtractive edits (removals, delay changes):
    /// recompute the anchor sets from scratch and diff them against the
    /// cached family.
    fn after_edit(&mut self) -> EditOutcome {
        self.stats.edits += 1;
        self.kernel_fresh = false;
        let new_sets = match AnchorSets::compute(&self.graph) {
            Ok(s) => s,
            // Unreachable after a guarded edit (mutators preserve forward
            // acyclicity), but surfaced faithfully rather than panicking.
            Err(ScheduleError::Graph(error)) => return self.reject(error),
            Err(_) => unreachable!("AnchorSets::compute only fails structurally"),
        };

        // Which vertices' anchor sets actually changed? Containment
        // verdicts of backward edges not touching them are reusable.
        let mut changed = vec![false; self.graph.n_vertices()];
        let mut roster_changed = new_sets.family().anchors() != self.sets.family().anchors();
        for v in self.graph.vertex_ids() {
            if !self.sets.set(v).eq(new_sets.set(v)) {
                changed[v.index()] = true;
                roster_changed = true;
            }
        }
        if roster_changed {
            let roster = new_sets.family().anchors().to_vec();
            self.reach.sync_sources(&self.graph, &roster);
        }
        self.sets = new_sets;

        self.recheck_containment(|_, e| changed[e.from().index()] || changed[e.to().index()]);
        self.classify_and_run()
    }

    /// Re-evaluates the Theorem 2 containment check on the backward edges
    /// selected by `pick`, updating the violation cache.
    fn recheck_containment(&mut self, pick: impl Fn(EdgeId, &rsched_graph::Edge) -> bool) {
        let mut updates = Vec::new();
        for (id, e) in self.graph.backward_edges() {
            if !pick(id, e) {
                continue;
            }
            self.stats.containment_checks += 1;
            if self.sets.is_subset(e.from(), e.to()) {
                updates.push((id, None));
            } else {
                updates.push((
                    id,
                    Some(IllPosedEdge {
                        from: e.from(),
                        to: e.to(),
                        missing: self.sets.family().difference(e.from(), e.to()),
                    }),
                ));
            }
        }
        for (id, verdict) in updates {
            match verdict {
                None => {
                    self.violations.remove(&id);
                }
                Some(v) => {
                    self.violations.insert(id, v);
                }
            }
        }
    }

    /// Classifies the (already re-analyzed) graph and, when well-posed,
    /// runs a warm reschedule. Mirrors the cold `schedule()` pipeline
    /// verdict-for-verdict.
    fn classify_and_run(&mut self) -> EditOutcome {
        // Fault-injection site: fires before any cached scheduling state
        // is touched, so an injected panic leaves the session recoverable
        // by journal replay. Together with the twin site on the additive
        // fast path, every reschedule evaluates it exactly once (a fast
        // path that diverges and falls back here fires twice — rare, and
        // harmless to the seeded fault schedules).
        let _ = rsched_graph::failpoint!("session::reschedule");
        if !self.violations.is_empty() {
            // Slow path: the cold pipeline reports `Unfeasible` with
            // priority over `IllPosed`, so a positive-cycle check is
            // unavoidable here.
            return match check_well_posed_with(&self.graph, &self.sets) {
                WellPosedness::Unfeasible { witness } => {
                    self.stats.unfeasible += 1;
                    self.posedness = WellPosedness::Unfeasible { witness };
                    EditOutcome::Unfeasible { witness }
                }
                verdict @ WellPosedness::IllPosed { .. } => {
                    self.stats.ill_posed += 1;
                    self.posedness = verdict.clone();
                    let WellPosedness::IllPosed { violations } = verdict else {
                        unreachable!()
                    };
                    EditOutcome::IllPosed { violations }
                }
                WellPosedness::WellPosed => {
                    // The incremental violation cache disagrees with the
                    // authoritative check; trust the latter.
                    debug_assert!(false, "stale containment cache");
                    self.violations.clear();
                    self.run_schedule()
                }
            };
        }
        self.run_schedule()
    }

    fn run_schedule(&mut self) -> EditOutcome {
        self.refresh_kernel();
        let family = self.sets.family().clone();
        let warm: Vec<VertexId> = match &self.current {
            Some(prev) => family
                .anchors()
                .iter()
                .copied()
                .filter(|a| !self.dirty.contains(a) && prev.sets_anchor(*a))
                .collect(),
            None => Vec::new(),
        };
        let result = match &self.current {
            Some(prev) if !warm.is_empty() => {
                reschedule_on(&self.kernel, &family, prev, &warm, self.threads)
            }
            _ => schedule_with_sets_on(&self.kernel, &family, self.threads),
        };
        let (schedule, warm_used) = match result {
            Ok(schedule) => {
                // Containment passed and the iteration converged, but a
                // positive cycle can hide from the per-anchor relaxation
                // (it only sees columns both endpoints track). Feasibility
                // certificate: if the schedule's start times under the
                // all-zero delay profile satisfy every edge, no positive
                // cycle can exist — summing `T(head) ≥ T(tail) + w` around
                // one would bound its weight by zero. One O(|V|·|A| + |E|)
                // sweep, against the cold pipeline's Bellman–Ford.
                let zeros = DelayProfile::zeros(&self.graph);
                let certificate = start_times(&self.graph, &schedule, &zeros)
                    .ok()
                    .map(|times| ZeroCertificate {
                        valid: verify_start_times(&self.graph, &times, &zeros).is_empty(),
                        times,
                    });
                if certificate.as_ref().is_some_and(|c| c.valid) {
                    self.zero_times = certificate;
                    (schedule, warm.len())
                } else {
                    // The certificate can also fail on *feasible* graphs
                    // that lost polarity (an edit disconnected the source,
                    // so some vertex tracks no anchor at all); only the
                    // authoritative check can tell the two apart.
                    match check_well_posed_with(&self.graph, &self.sets) {
                        WellPosedness::Unfeasible { witness } => {
                            return self.mark_unfeasible(witness);
                        }
                        WellPosedness::WellPosed => {
                            self.zero_times = certificate;
                            (schedule, warm.len())
                        }
                        // Containment over the same sets was clean above, so
                        // the authoritative check cannot see a violation.
                        verdict @ WellPosedness::IllPosed { .. } => {
                            unreachable!("containment cache disagrees: {verdict:?}")
                        }
                    }
                }
            }
            Err(ScheduleError::Inconsistent { .. }) => {
                // Budget exhausted: on a well-posed polar graph this proves
                // a positive cycle (Theorem 8), but classify authoritatively
                // so degenerate non-polar graphs fall back to a cold run.
                match check_well_posed_with(&self.graph, &self.sets) {
                    WellPosedness::Unfeasible { witness } => {
                        return self.mark_unfeasible(witness);
                    }
                    WellPosedness::WellPosed => {
                        match schedule_with_sets_on(&self.kernel, &family, self.threads) {
                            Ok(schedule) => {
                                self.zero_times = None;
                                (schedule, 0)
                            }
                            Err(e) => {
                                unreachable!(
                                    "cold run failed on a feasible, well-posed graph: {e:?}"
                                )
                            }
                        }
                    }
                    verdict @ WellPosedness::IllPosed { .. } => {
                        unreachable!("containment cache disagrees: {verdict:?}")
                    }
                }
            }
            Err(ScheduleError::Graph(error)) => return self.reject(error),
            Err(e) => {
                unreachable!("unexpected scheduling error after containment check: {e:?}")
            }
        };
        self.accept(schedule, warm_used)
    }

    /// Installs a freshly computed minimum schedule and reports the edit.
    fn accept(&mut self, schedule: RelativeSchedule, warm_used: usize) -> EditOutcome {
        let iterations = schedule.iterations();
        let total_anchors = schedule.anchors().len();
        self.stats.reschedules += 1;
        self.stats.iterations += iterations;
        self.stats.warm_anchor_columns += warm_used;
        self.stats.cold_anchor_columns += total_anchors - warm_used;
        self.current = Some(schedule);
        self.dirty.clear();
        self.posedness = WellPosedness::WellPosed;
        EditOutcome::Rescheduled {
            iterations,
            warm_anchors: warm_used,
            total_anchors,
        }
    }

    fn mark_unfeasible(&mut self, witness: VertexId) -> EditOutcome {
        self.stats.unfeasible += 1;
        self.posedness = WellPosedness::Unfeasible { witness };
        EditOutcome::Unfeasible { witness }
    }
}

/// Extension used by [`Session`] to test membership in a previous
/// schedule's anchor roster without exposing internals.
trait SetsAnchor {
    fn sets_anchor(&self, a: VertexId) -> bool;
}

impl SetsAnchor for RelativeSchedule {
    fn sets_anchor(&self, a: VertexId) -> bool {
        self.tracked_sets().anchor_index(a).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::schedule;

    /// A small design with one unbounded synchronization: source, a
    /// bounded producer chain, and a max constraint.
    fn demo() -> (ConstraintGraph, VertexId, VertexId, VertexId) {
        let mut g = ConstraintGraph::new();
        let sync = g.add_operation("sync", ExecDelay::Unbounded);
        let alu = g.add_operation("alu", ExecDelay::Fixed(2));
        let out = g.add_operation("out", ExecDelay::Fixed(1));
        g.add_dependency(sync, alu).unwrap();
        g.add_dependency(alu, out).unwrap();
        g.add_max_constraint(alu, out, 4).unwrap();
        g.polarize().unwrap();
        (g, sync, alu, out)
    }

    fn assert_matches_cold(session: &Session) {
        let cold = schedule(session.graph());
        match (session.posedness(), cold) {
            (WellPosedness::WellPosed, Ok(cold)) => {
                let warm = session.schedule().expect("schedule cached");
                assert_eq!(warm.anchors(), cold.anchors());
                for v in session.graph().vertex_ids() {
                    for &a in cold.anchors() {
                        assert_eq!(warm.offset(v, a), cold.offset(v, a), "σ_{a}({v})");
                    }
                }
            }
            (
                WellPosedness::Unfeasible { witness },
                Err(ScheduleError::Unfeasible { witness: w }),
            ) => {
                assert_eq!(*witness, w);
            }
            (
                WellPosedness::IllPosed { violations },
                Err(ScheduleError::IllPosed { from, to, missing }),
            ) => {
                assert_eq!(violations[0].from, from);
                assert_eq!(violations[0].to, to);
                assert_eq!(violations[0].missing, missing);
            }
            (state, cold) => panic!("verdict mismatch: session={state:?}, cold={cold:?}"),
        }
    }

    #[test]
    fn open_schedules_and_matches_cold() {
        let (g, ..) = demo();
        let session = Session::open(g).unwrap();
        assert!(session.posedness().is_well_posed());
        assert_matches_cold(&session);
        assert_eq!(session.stats().reschedules, 1);
    }

    #[test]
    fn additive_edit_warm_starts_every_anchor() {
        let (g, _, alu, out) = demo();
        let mut session = Session::open(g).unwrap();
        let outcome = session.add_min_constraint(alu, out, 3);
        let EditOutcome::Rescheduled {
            warm_anchors,
            total_anchors,
            ..
        } = outcome
        else {
            panic!("expected reschedule, got {outcome:?}");
        };
        assert_eq!(warm_anchors, total_anchors);
        assert_matches_cold(&session);
    }

    #[test]
    fn removal_restarts_only_reaching_anchors() {
        let (mut g, _, alu, out) = demo();
        // A second, independent synchronization branch: its anchor cannot
        // reach the edited edge, so it must stay warm across the removal.
        let side = g.add_operation("side_sync", ExecDelay::Unbounded);
        let sink_op = g.add_operation("side_op", ExecDelay::Fixed(1));
        g.add_dependency(side, sink_op).unwrap();
        g.polarize().unwrap();
        let mut session = Session::open(g).unwrap();
        assert!(session.edge_between(alu, out).is_some());
        let constraint = session
            .graph()
            .backward_edges()
            .map(|(id, _)| id)
            .next()
            .unwrap();
        let outcome = session.remove_edge(constraint);
        let EditOutcome::Rescheduled {
            warm_anchors,
            total_anchors,
            ..
        } = outcome
        else {
            panic!("expected reschedule, got {outcome:?}");
        };
        assert!(warm_anchors >= 1, "side_sync's column must stay warm");
        assert!(warm_anchors < total_anchors, "alu-reaching anchors restart");
        assert_matches_cold(&session);
    }

    #[test]
    fn set_delay_round_trip_matches_cold() {
        let (g, _, alu, _) = demo();
        let mut session = Session::open(g).unwrap();
        assert_eq!(
            session.set_delay(alu, ExecDelay::Fixed(2)),
            EditOutcome::Unchanged
        );
        // alu becomes an anchor; the max constraint now spans it and the
        // graph turns ill-posed — with the cold pipeline's witnesses.
        let outcome = session.set_delay(alu, ExecDelay::Unbounded);
        assert!(matches!(outcome, EditOutcome::IllPosed { .. }));
        assert_matches_cold(&session);
        // Back to fixed: well-posed again.
        let outcome = session.set_delay(alu, ExecDelay::Fixed(3));
        assert!(matches!(outcome, EditOutcome::Rescheduled { .. }));
        assert_matches_cold(&session);
    }

    #[test]
    fn unfeasible_edit_reports_cold_witness() {
        let (g, _, alu, out) = demo();
        let mut session = Session::open(g).unwrap();
        // min 9 against max 4 over the same pair: positive cycle.
        let outcome = session.add_min_constraint(alu, out, 9);
        assert!(matches!(outcome, EditOutcome::Unfeasible { .. }));
        assert_matches_cold(&session);
        assert_eq!(session.stats().unfeasible, 1);
    }

    #[test]
    fn rejected_edits_leave_state_intact() {
        let (g, _, alu, _) = demo();
        let mut session = Session::open(g).unwrap();
        let before = session.schedule().cloned();
        let bogus = VertexId::from_index(999);
        assert!(matches!(
            session.add_dependency(alu, bogus),
            EditOutcome::Rejected {
                error: GraphError::UnknownVertex(_)
            }
        ));
        assert!(matches!(
            session.set_delay(session.graph().source(), ExecDelay::Fixed(1)),
            EditOutcome::Rejected {
                error: GraphError::ImmutableVertex(_)
            }
        ));
        assert_eq!(session.schedule().cloned(), before);
        assert_eq!(session.stats().rejected, 2);
        assert_eq!(session.stats().edits, 0);
    }

    #[test]
    fn threaded_session_is_bit_identical() {
        let run = |threads: usize| {
            let (g, sync, alu, out) = demo();
            let mut session = Session::open(g).unwrap();
            session.set_threads(threads);
            session.add_min_constraint(sync, alu, 1);
            session.add_max_constraint(alu, out, 9);
            session.set_delay(out, ExecDelay::Unbounded);
            session.set_delay(out, ExecDelay::Fixed(2));
            session
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.schedule().cloned(), eight.schedule().cloned());
        assert_eq!(one.stats(), eight.stats());
        assert_eq!(one.posedness(), eight.posedness());
    }

    #[test]
    fn long_mixed_sequence_stays_consistent() {
        let (g, sync, alu, out) = demo();
        let mut session = Session::open(g).unwrap();
        assert!(session.add_max_constraint(alu, out, 9).is_scheduled());
        let e1 = session
            .graph()
            .backward_edges()
            .map(|(id, _)| id)
            .last()
            .unwrap();
        assert_matches_cold(&session);
        session.add_min_constraint(sync, alu, 1);
        assert_matches_cold(&session);
        session.remove_edge(e1);
        assert_matches_cold(&session);
        session.set_delay(out, ExecDelay::Unbounded);
        assert_matches_cold(&session);
        session.set_delay(out, ExecDelay::Fixed(2));
        assert_matches_cold(&session);
    }
}
