//! A minimal JSON value model, parser, and writer for the JSON-lines
//! scheduling service.
//!
//! The service speaks newline-delimited JSON over stdin/stdout; pulling in
//! a full serde stack for five request shapes is not worth an external
//! dependency, so this module implements the subset of RFC 8259 the
//! protocol needs: all value kinds, string escapes (including `\uXXXX`
//! with surrogate pairs), and integer/float numbers. Objects preserve
//! insertion order so responses render deterministically.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order, later duplicates win on
    /// lookup is *not* implemented — first match wins, as keys are
    /// expected unique.
    Object(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload; floats with integral value also qualify.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Builds a `Json::Object` from `(key, value)` pairs.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let line = r#"{"id":7,"op":"edit","kind":"add_max","from":"a","to":"b","value":4}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("edit"));
        assert_eq!(v.get("value").and_then(Json::as_i64), Some(4));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\n\t\"\\ é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀"));
        // Rendering escapes what must be escaped and round-trips.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn numbers_keep_integers_exact() {
        assert_eq!(
            Json::parse("-9007199254740993").unwrap(),
            Json::Int(-9007199254740993)
        );
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Json::parse(r#"{"a":[1,null,true,{"b":[]}],"c":{"d":-2}}"#).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert!(v.get("a").unwrap().as_array().unwrap().len() == 4);
    }
}
