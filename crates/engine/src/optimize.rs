//! Feedback-guided re-optimization: an iterative scheduler ⇄ binding loop.
//!
//! The paper's minimum relative schedule yields slack/mobility as a
//! byproduct of its fixpoint; the subgraph-extraction HLS literature
//! closes the loop by re-binding only the critical region and iterating.
//! Each [`Optimizer::step`] runs one round (DESIGN.md §15):
//!
//! 1. **Extract** — [`rsched_core::relative_slack`] finds the critical
//!    subgraph: fixed-delay ops whose minimum slack over every tracked
//!    anchor is at most [`OptimizeConfig::slack_threshold`] (zero slack =
//!    zero mobility = critical).
//! 2. **Re-serialize** — [`rsched_binding::serialize_region`] lifts the
//!    region into a cone, list-schedules it under the resource budget and
//!    proposes serialization edges for operations sharing an instance.
//! 3. **Apply** — each proposed edge goes through the incremental
//!    [`Session`] warm path (`add_dependency`), so a round costs a warm
//!    re-schedule, not a cold one.
//! 4. **Accept/revert** — the candidate is scored by a latency +
//!    control-cost + resource-pressure objective ([`Objective`], control
//!    cost from `rsched-ctrl`'s gate-equivalent model on the
//!    irredundant-anchor-restricted schedule); a round is kept only when
//!    the scalarized score does not worsen, otherwise every applied edge
//!    is removed again (warm path both ways) and the loop converges.
//!
//! The loop terminates: every accepted round orders at least one
//! previously unordered pair (proposals are irredundant by construction),
//! a rejected or empty proposal stops the loop, and
//! [`OptimizeConfig::max_rounds`] bounds it unconditionally.
//!
//! The engine cannot depend on `rsched-oracle` (the oracle depends on the
//! engine), so refereeing is the *caller's* job: the step-wise API exposes
//! the session after every round, and the CLI, convergence proptest,
//! `fuzz_optimize` phase and optimize bench all re-prove the paper's
//! theorems on each accepted round.

use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use rsched_binding::{serialize_region, ResourcePool};
use rsched_core::{
    relative_slack, start_times, DelayProfile, IrredundantAnchors, RelativeSchedule, ScheduleError,
};
use rsched_ctrl::generate;
// Re-exported so optimize clients can pick a style without depending on
// `rsched-ctrl` themselves.
pub use rsched_ctrl::ControlStyle;
use rsched_graph::{ConstraintGraph, ExecDelay, VertexId};

use crate::session::{EditOutcome, Session};

/// Tuning knobs for the optimize loop.
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    /// Hard cap on rounds (accepted or not).
    pub max_rounds: usize,
    /// Ops with minimum slack `<= slack_threshold` join the critical
    /// region (0 = strictly zero-mobility ops).
    pub slack_threshold: i64,
    /// Resource instances per kind (kinds are delay classes).
    pub budget: usize,
    /// Control implementation style the objective scores.
    pub style: ControlStyle,
    /// Objective weight on latency cycles.
    pub latency_weight: u64,
    /// Objective weight on control gate-equivalents.
    pub control_weight: u64,
    /// Objective weight on resource-pressure cycle-overshoots. Dominant
    /// by default so fitting the budget beats raw latency.
    pub pressure_weight: u64,
    /// Optional cap on total graph edges (serve maps its `--max-edges`
    /// quota here); the loop stops before exceeding it.
    pub max_edges: Option<usize>,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            max_rounds: 8,
            slack_threshold: 0,
            budget: 1,
            style: ControlStyle::Counter,
            latency_weight: 4,
            control_weight: 1,
            pressure_weight: 64,
            max_edges: None,
        }
    }
}

/// One point in the latency-vs-control design space, plus the pressure
/// term that drives acceptance under a resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objective {
    /// Zero-profile sink start time (all unbounded delays at 0).
    pub latency: u64,
    /// Gate-equivalent control cost of the irredundant-restricted
    /// schedule ([`rsched_ctrl::ControlCost::total_estimate`]).
    pub control: u64,
    /// Integral of same-kind concurrency above the budget (cycle ×
    /// excess instances, summed over kinds); 0 means the budget holds.
    pub pressure: u64,
}

impl Objective {
    /// Scalarized score under `config`'s weights (lower is better).
    pub fn scalar(&self, config: &OptimizeConfig) -> u64 {
        self.latency * config.latency_weight
            + self.control * config.control_weight
            + self.pressure * config.pressure_weight
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {}, control {} gate eq., pressure {}",
            self.latency, self.control, self.pressure
        )
    }
}

/// What one optimize round did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// Critical-region size this round.
    pub region_ops: usize,
    /// Serialization edges the binder proposed.
    pub proposed_edges: usize,
    /// Edges actually applied through the session, as (from, to) vertex
    /// names (reverted again unless `accepted`).
    pub applied_edges: Vec<(String, String)>,
    /// Whether the round was kept.
    pub accepted: bool,
    /// Objective before the round.
    pub before: Objective,
    /// Objective of the candidate (equals `before` when the proposal
    /// could not even be applied).
    pub after: Objective,
}

/// Summary of a full optimize run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Objective of the untouched session.
    pub initial: Objective,
    /// Objective of the final (accepted) state.
    pub final_objective: Objective,
    /// Every round, accepted or reverted.
    pub rounds: Vec<RoundReport>,
    /// Rounds that were kept.
    pub accepted_rounds: usize,
    /// `true` when the loop stopped by itself (empty or rejected
    /// proposal), `false` when `max_rounds` cut it off.
    pub converged: bool,
    /// `true` when the `max_edges` quota stopped the loop.
    pub edge_budget_exhausted: bool,
}

impl OptimizeReport {
    /// The explored (latency, control) points: the initial state plus
    /// every accepted round, deduplicated, in exploration order.
    pub fn explored_points(&self) -> Vec<(u64, u64)> {
        let mut points = vec![(self.initial.latency, self.initial.control)];
        for round in self.rounds.iter().filter(|r| r.accepted) {
            points.push((round.after.latency, round.after.control));
        }
        points.dedup();
        points
    }

    /// The non-dominated subset of [`Self::explored_points`] (minimizing
    /// both latency and control cost), sorted by latency.
    pub fn pareto_points(&self) -> Vec<(u64, u64)> {
        let explored: BTreeSet<(u64, u64)> = self.explored_points().into_iter().collect();
        explored
            .iter()
            .filter(|&&(l, c)| {
                !explored
                    .iter()
                    .any(|&(ol, oc)| (ol, oc) != (l, c) && ol <= l && oc <= c)
            })
            .copied()
            .collect()
    }
}

/// Why an optimize run could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// The session holds no schedule (ill-posed or unfeasible graph).
    NotScheduled,
    /// An analysis failed (slack, start times, anchors).
    Schedule(ScheduleError),
    /// Binding or list scheduling failed.
    Bind(String),
    /// A `session::optimize` failpoint injected an error.
    Injected(String),
    /// A revert could not find the edge it had just applied — the
    /// session is in an unexpected state.
    RevertFailed {
        /// Source vertex name.
        from: String,
        /// Target vertex name.
        to: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::NotScheduled => {
                write!(
                    f,
                    "session holds no schedule; optimize needs a well-posed graph"
                )
            }
            OptimizeError::Schedule(e) => write!(f, "analysis failed: {e}"),
            OptimizeError::Bind(e) => write!(f, "binding failed: {e}"),
            OptimizeError::Injected(msg) => write!(f, "injected fault: {msg}"),
            OptimizeError::RevertFailed { from, to } => {
                write!(f, "revert failed: edge {from} -> {to} vanished")
            }
        }
    }
}

impl Error for OptimizeError {}

impl From<ScheduleError> for OptimizeError {
    fn from(e: ScheduleError) -> Self {
        OptimizeError::Schedule(e)
    }
}

/// Scores `(graph, omega)` under `config`: zero-profile latency, reduced
/// control cost, and budget overshoot pressure.
pub fn measure(
    graph: &ConstraintGraph,
    omega: &RelativeSchedule,
    config: &OptimizeConfig,
) -> Result<Objective, ScheduleError> {
    let profile = DelayProfile::zeros(graph);
    let times = start_times(graph, omega, &profile)?;
    let latency = times.time(graph.sink());
    let analysis = IrredundantAnchors::analyze(graph)?;
    let reduced = omega.restrict(analysis.irredundant.family());
    let control = generate(graph, &reduced, config.style)
        .cost()
        .total_estimate();

    // Pressure: per delay class, sweep the zero-profile execution
    // intervals and integrate concurrency above the budget. Ends sort
    // before starts at equal times, so back-to-back ops don't overlap.
    let mut intervals: HashMap<u64, Vec<(u64, i64)>> = HashMap::new();
    for v in graph.operation_ids() {
        if let ExecDelay::Fixed(d) = graph.vertex(v).delay() {
            if d > 0 {
                let t = times.time(v);
                let events = intervals.entry(d).or_default();
                events.push((t, 1));
                events.push((t + d, -1));
            }
        }
    }
    let mut pressure = 0u64;
    for events in intervals.values_mut() {
        events.sort_by_key(|&(t, delta)| (t, delta));
        let (mut live, mut prev) = (0i64, 0u64);
        for &(t, delta) in events.iter() {
            let excess = live - config.budget as i64;
            if excess > 0 {
                pressure += excess as u64 * (t - prev);
            }
            prev = t;
            live += delta;
        }
    }
    Ok(Objective {
        latency,
        control,
        pressure,
    })
}

/// The resource kind of a fixed-delay op: its delay class.
fn kind_of(delay: u64) -> String {
    format!("fu{delay}")
}

/// A step-wise optimize loop over one [`Session`].
///
/// Callers drive it with [`Optimizer::step`] (refereeing each accepted
/// round externally) or [`Optimizer::run`], then read the
/// [`OptimizeReport`] and take the session back with
/// [`Optimizer::into_session`].
#[derive(Debug, Clone)]
pub struct Optimizer {
    session: Session,
    config: OptimizeConfig,
    initial: Objective,
    current: Objective,
    rounds: Vec<RoundReport>,
    converged: bool,
    edge_budget_exhausted: bool,
}

impl Optimizer {
    /// Wraps a scheduled session; measures the initial objective.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::NotScheduled`] when the session holds no
    /// schedule; analysis errors from the initial measurement.
    pub fn new(session: Session, config: OptimizeConfig) -> Result<Optimizer, OptimizeError> {
        let omega = session.schedule().ok_or(OptimizeError::NotScheduled)?;
        let initial = measure(session.graph(), omega, &config)?;
        Ok(Optimizer {
            session,
            config,
            initial,
            current: initial,
            rounds: Vec::new(),
            converged: false,
            edge_budget_exhausted: false,
        })
    }

    /// The session in its current (accepted) state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Objective of the untouched session.
    pub fn initial(&self) -> Objective {
        self.initial
    }

    /// Objective of the current accepted state.
    pub fn current(&self) -> Objective {
        self.current
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> &[RoundReport] {
        &self.rounds
    }

    /// `true` once the loop stopped by itself.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Runs one round. `Ok(None)` means the loop is finished (converged,
    /// out of rounds, or out of edge budget); `Ok(Some(_))` reports the
    /// round just executed (check `accepted`).
    ///
    /// # Errors
    ///
    /// Analysis/binding failures and injected `session::optimize`
    /// faults. The session is left in its last accepted state.
    pub fn step(&mut self) -> Result<Option<&RoundReport>, OptimizeError> {
        if let Some(msg) = rsched_graph::failpoint!("session::optimize") {
            return Err(OptimizeError::Injected(msg));
        }
        if self.converged || self.rounds.len() >= self.config.max_rounds {
            return Ok(None);
        }

        // 1. Extract the critical region from slack.
        let omega = self
            .session
            .schedule()
            .ok_or(OptimizeError::NotScheduled)?
            .clone();
        let graph = self.session.graph();
        let slack = relative_slack(graph, &omega)?;
        let mut region = Vec::new();
        let mut classes: HashMap<VertexId, String> = HashMap::new();
        for v in graph.operation_ids() {
            let ExecDelay::Fixed(d) = graph.vertex(v).delay() else {
                continue;
            };
            if d == 0 {
                continue;
            }
            let min_slack = slack
                .anchors()
                .iter()
                .filter_map(|&a| slack.slack(v, a))
                .min();
            if min_slack.is_some_and(|s| s <= self.config.slack_threshold) {
                region.push(v);
                classes.insert(v, kind_of(d));
            }
        }
        if region.len() < 2 {
            self.converged = true;
            return Ok(None);
        }

        // 2. Ask the binder for a serialization proposal.
        let mut pool = ResourcePool::new();
        let kinds: BTreeSet<&String> = classes.values().collect();
        for kind in kinds {
            pool = pool.with_kind(kind.clone(), self.config.budget);
        }
        let plan = serialize_region(graph, &region, &classes, &pool)
            .map_err(|e| OptimizeError::Bind(e.to_string()))?;
        if plan.edges.is_empty() {
            self.converged = true;
            return Ok(None);
        }
        if let Some(limit) = self.config.max_edges {
            if graph.n_edges() + plan.edges.len() > limit {
                self.edge_budget_exhausted = true;
                self.converged = true;
                return Ok(None);
            }
        }

        // 3. Apply through the warm path.
        let before = self.current;
        let mut applied: Vec<(VertexId, VertexId)> = Vec::new();
        let mut viable = true;
        for &(from, to) in &plan.edges {
            match self.session.add_dependency(from, to) {
                EditOutcome::Rescheduled { .. } => applied.push((from, to)),
                EditOutcome::Unchanged => {}
                // A serialization edge can close a positive cycle with a
                // max constraint (unfeasible); ill-posedness cannot arise
                // (Lemma 7: anchor sets only grow) but is handled the
                // same way for safety.
                EditOutcome::IllPosed { .. } | EditOutcome::Unfeasible { .. } => {
                    applied.push((from, to));
                    viable = false;
                    break;
                }
                EditOutcome::Rejected { .. } => {
                    viable = false;
                    break;
                }
            }
        }

        // 4. Score and accept or revert.
        let (after, accepted) = if viable && !applied.is_empty() {
            let omega = self.session.schedule().ok_or(OptimizeError::NotScheduled)?;
            let after = measure(self.session.graph(), omega, &self.config)?;
            let accepted = after.scalar(&self.config) <= before.scalar(&self.config);
            (after, accepted)
        } else {
            (before, false)
        };
        if accepted {
            self.current = after;
        } else {
            for &(from, to) in applied.iter().rev() {
                let name = |v: VertexId| self.session.graph().vertex(v).name().to_owned();
                let Some(edge) = self.session.edge_between(from, to) else {
                    return Err(OptimizeError::RevertFailed {
                        from: name(from),
                        to: name(to),
                    });
                };
                self.session.remove_edge(edge);
            }
            self.converged = true;
        }

        let name = |v: VertexId| self.session.graph().vertex(v).name().to_owned();
        self.rounds.push(RoundReport {
            round: self.rounds.len() + 1,
            region_ops: region.len(),
            proposed_edges: plan.edges.len(),
            applied_edges: applied.iter().map(|&(f, t)| (name(f), name(t))).collect(),
            accepted,
            before,
            after,
        });
        Ok(self.rounds.last())
    }

    /// Runs rounds until the loop finishes.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Optimizer::step`] failure.
    pub fn run(&mut self) -> Result<(), OptimizeError> {
        while self.step()?.is_some() {}
        Ok(())
    }

    /// Summarizes the run so far.
    pub fn report(&self) -> OptimizeReport {
        OptimizeReport {
            initial: self.initial,
            final_objective: self.current,
            rounds: self.rounds.clone(),
            accepted_rounds: self.rounds.iter().filter(|r| r.accepted).count(),
            converged: self.converged,
            edge_budget_exhausted: self.edge_budget_exhausted,
        }
    }

    /// Consumes the optimizer, returning the session in its final
    /// accepted state.
    pub fn into_session(self) -> Session {
        self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four concurrent 2-cycle ops between fork and join: budget 1 forces
    /// serialization, trading latency for pressure.
    fn fan_session() -> Session {
        let mut g = ConstraintGraph::new();
        let fork = g.add_operation("fork", ExecDelay::Fixed(0));
        let join = g.add_operation("join", ExecDelay::Fixed(0));
        for i in 0..4 {
            let v = g.add_operation(format!("op{i}"), ExecDelay::Fixed(2));
            g.add_dependency(fork, v).unwrap();
            g.add_dependency(v, join).unwrap();
        }
        g.polarize().unwrap();
        Session::open(g).unwrap()
    }

    #[test]
    fn serializes_fan_under_unit_budget() {
        let mut opt = Optimizer::new(fan_session(), OptimizeConfig::default()).unwrap();
        opt.run().unwrap();
        let report = opt.report();
        assert!(report.converged);
        assert!(report.accepted_rounds >= 1);
        assert_eq!(report.final_objective.pressure, 0, "budget must hold");
        assert!(report.final_objective.latency > report.initial.latency);
        // The explored space contains the fast/parallel and the
        // cheap/serial state: at least two distinct points.
        assert!(report.explored_points().len() >= 2);
    }

    #[test]
    fn wide_budget_converges_without_edits() {
        let config = OptimizeConfig {
            budget: 4,
            ..OptimizeConfig::default()
        };
        let mut opt = Optimizer::new(fan_session(), config).unwrap();
        opt.run().unwrap();
        let report = opt.report();
        assert!(report.converged);
        assert_eq!(report.accepted_rounds, 0);
        assert_eq!(report.final_objective, report.initial);
    }

    #[test]
    fn max_edges_quota_stops_the_loop() {
        let session = fan_session();
        let edges = session.graph().n_edges();
        let config = OptimizeConfig {
            max_edges: Some(edges), // no headroom at all
            ..OptimizeConfig::default()
        };
        let mut opt = Optimizer::new(session, config).unwrap();
        opt.run().unwrap();
        let report = opt.report();
        assert!(report.edge_budget_exhausted);
        assert_eq!(report.accepted_rounds, 0);
    }

    #[test]
    fn objective_scalar_is_monotone_over_accepted_rounds() {
        let mut opt = Optimizer::new(fan_session(), OptimizeConfig::default()).unwrap();
        let config = OptimizeConfig::default();
        let mut last = opt.initial().scalar(&config);
        while let Some(round) = opt.step().unwrap() {
            if round.accepted {
                let s = round.after.scalar(&config);
                assert!(s <= last, "accepted round worsened the objective");
                last = s;
            }
        }
    }
}
