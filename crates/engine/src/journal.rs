//! Append-only session journals with deterministic replay recovery,
//! periodic snapshots, and WAL compaction.
//!
//! Every serve session keeps a [`Journal`]: a **base record** (the
//! opening design text, or the most recent snapshot) plus each *accepted*
//! mutating edit since, recorded by operation **name** (not `VertexId`),
//! so the whole history replays through a fresh [`Session`] regardless of
//! internal id assignment. When a request panics mid-edit the live
//! `Session` may be half-mutated and is quarantined; the journal —
//! appended only *after* an edit is accepted — still describes the last
//! consistent state, and [`Journal::replay`] rebuilds it
//! deterministically. Replay is bit-identical to the live session at
//! every prefix (`posedness()`, offsets, anchor roster): the engine's
//! differential guarantees already pin every edit path to the cold
//! scheduler, and the journal is exactly that edit sequence.
//!
//! # Snapshots & compaction
//!
//! Without compaction, replay cost is O(full edit history): a session
//! alive for a million edits takes a million reschedules to recover.
//! [`Journal::maybe_compact`] bounds this: once the delta since the base
//! reaches `snapshot_every` accepted edits **and** the live session is in
//! a snapshot-safe state, the session's current graph is serialized
//! (`ConstraintGraph::to_text`) into a [`JournalOp::Snapshot`] base
//! record, the in-memory delta is dropped, and the WAL mirror is
//! atomically rewritten (temp file + rename) to just the snapshot line.
//! Replay then costs O(`snapshot_every`) regardless of lifetime history —
//! the Temporal `ContinueAsNew` pattern applied to constraint-graph
//! sessions.
//!
//! Snapshot safety: the engine's differential guarantees make a live
//! well-posed session's observable state (graph, verdict, anchors,
//! offsets) bit-identical to `Session::open` on its current graph text,
//! so compaction requires the session to be **well-posed**, the graph
//! **polar** (reopening would otherwise re-polarize and add edges), and
//! all operation **names unique** (`to_text` disambiguates duplicates by
//! renaming, which would orphan name-keyed delta edits). When any of
//! these fail the compaction is simply deferred — correctness never
//! depends on a snapshot happening.
//!
//! A crash **mid-snapshot** (failpoint site `journal::snapshot`, armed as
//! a panic) is harmless: the failpoint sits before any state mutation, so
//! the pre-snapshot base, delta, and WAL file all remain intact and
//! recovery replays them as if the snapshot was never attempted.
//!
//! # WAL group commit
//!
//! Journals can optionally be mirrored to a write-ahead file (one JSON
//! object per line) under `--journal-dir`, giving operators an audit
//! trail that survives the process. [`Journal::append`] only **buffers**
//! the WAL line; [`Journal::sync`] writes every buffered line with a
//! single write + flush. The serve layer syncs once per drained request
//! batch (group commit) instead of once per op — the per-request
//! write+flush syscalls were measured at ~58% of a serve round. Mirror
//! I/O errors are swallowed: recovery reads only the in-memory journal,
//! and a full disk must never take the service down. Dropping a journal
//! syncs any remaining buffered lines.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;

use rsched_core::{AnchorSetFamily, RelativeSchedule};
use rsched_graph::{ConstraintGraph, ExecDelay, VertexId};

use crate::json::{object, Json};
use crate::session::{EditOutcome, Session};

/// A name-keyed serialization of a session's minimum schedule, stored
/// inside snapshot records so recovery can skip the opening fixpoint run.
///
/// Everything is keyed by operation **name** (like every other journal
/// record), so the seed survives re-parsing the design text regardless of
/// internal id assignment. [`ScheduleSeed::instantiate`] rebuilds the
/// exact [`RelativeSchedule`] against a freshly parsed graph; any
/// mismatch (renamed ops, missing anchors, wrong coverage) yields `None`
/// and the recovery path falls back to a full re-schedule — a stale or
/// hand-edited seed can cost a warm start, never correctness, because
/// [`Session::open_with_seed`] re-verifies the seed before installing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleSeed {
    /// Fixpoint iterations the original run needed (part of the schedule
    /// value, so replayed state stays bit-identical).
    pub iterations: usize,
    /// Anchor roster by operation name, in anchor id order.
    pub anchors: Vec<String>,
    /// Per-vertex tracked offsets: `(vertex, [(anchor, offset)])`. The
    /// key set of each row is exactly the vertex's tracked anchor set.
    pub offsets: Vec<(String, Vec<(String, i64)>)>,
}

impl ScheduleSeed {
    /// Captures the seed of `schedule` using `graph`'s operation names.
    pub fn capture(graph: &ConstraintGraph, schedule: &RelativeSchedule) -> ScheduleSeed {
        let name = |v: VertexId| graph.vertex(v).name().to_owned();
        ScheduleSeed {
            iterations: schedule.iterations(),
            anchors: schedule.anchors().iter().map(|&a| name(a)).collect(),
            offsets: graph
                .vertex_ids()
                .filter_map(|v| {
                    let row: Vec<(String, i64)> =
                        schedule.offsets_of(v).map(|(a, o)| (name(a), o)).collect();
                    if row.is_empty() {
                        None
                    } else {
                        Some((name(v), row))
                    }
                })
                .collect(),
        }
    }

    /// Rebuilds the schedule against `graph` (freshly parsed from the
    /// snapshot design). Returns `None` whenever any name fails to
    /// resolve or the reconstructed family/offsets are inconsistent —
    /// callers then fall back to a cold schedule run.
    pub fn instantiate(&self, graph: &ConstraintGraph) -> Option<RelativeSchedule> {
        let by_name: HashMap<&str, VertexId> = graph
            .vertex_ids()
            .map(|v| (graph.vertex(v).name(), v))
            .collect();
        // Duplicate names make resolution ambiguous (snapshots only ever
        // record uniquely named graphs).
        if by_name.len() != graph.n_vertices() {
            return None;
        }
        let resolve = |n: &str| by_name.get(n).copied();
        let anchors: Vec<VertexId> = self
            .anchors
            .iter()
            .map(|n| resolve(n))
            .collect::<Option<_>>()?;
        let mut sets: Vec<(VertexId, Vec<VertexId>)> = Vec::with_capacity(self.offsets.len());
        let mut triples: Vec<(VertexId, VertexId, i64)> = Vec::new();
        for (vn, row) in &self.offsets {
            let v = resolve(vn)?;
            let mut members = Vec::with_capacity(row.len());
            for (an, off) in row {
                let a = resolve(an)?;
                members.push(a);
                triples.push((v, a, *off));
            }
            sets.push((v, members));
        }
        let family = AnchorSetFamily::from_sets(graph.n_vertices(), &anchors, &sets)?;
        RelativeSchedule::from_offsets(family, graph.n_vertices(), &triples, self.iterations)
    }

    /// Renders the seed as the `"analysis"` value of a snapshot line.
    fn to_json(&self) -> Json {
        object([
            ("iterations", Json::from(self.iterations)),
            (
                "anchors",
                Json::Array(
                    self.anchors
                        .iter()
                        .map(|a| Json::from(a.as_str()))
                        .collect(),
                ),
            ),
            (
                "offsets",
                Json::Object(
                    self.offsets
                        .iter()
                        .map(|(v, row)| {
                            (
                                v.clone(),
                                Json::Object(
                                    row.iter()
                                        .map(|(a, o)| (a.clone(), Json::Int(*o)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses an `"analysis"` value; `None` for anything malformed (the
    /// snapshot then replays with a cold schedule run).
    fn from_json(json: &Json) -> Option<ScheduleSeed> {
        let iterations = usize::try_from(json.get("iterations")?.as_i64()?).ok()?;
        let anchors = json
            .get("anchors")?
            .as_array()?
            .iter()
            .map(|a| a.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()?;
        let Json::Object(rows) = json.get("offsets")? else {
            return None;
        };
        let mut offsets = Vec::with_capacity(rows.len());
        for (v, row) in rows {
            let Json::Object(cells) = row else {
                return None;
            };
            let mut out = Vec::with_capacity(cells.len());
            for (a, o) in cells {
                out.push((a.clone(), o.as_i64()?));
            }
            offsets.push((v.clone(), out));
        }
        Some(ScheduleSeed {
            iterations,
            anchors,
            offsets,
        })
    }
}

/// One replayable session record, keyed by operation names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// `Session::open` on a design in the graph text format.
    Open {
        /// The design source; replay re-parses it.
        design: String,
        /// The serve-layer session name, written into the WAL so a
        /// restarted process can rebuild its session table from the
        /// journal directory alone. Empty for pre-naming WAL files.
        session: String,
    },
    /// A compaction base: the session's full graph re-serialized. Replay
    /// treats it exactly like [`JournalOp::Open`]; the distinct variant
    /// keeps the WAL audit trail honest about where history was folded.
    Snapshot {
        /// The serialized graph at the compaction point.
        design: String,
        /// The serve-layer session name (see [`JournalOp::Open`]).
        session: String,
        /// The session's schedule at the compaction point, when it was
        /// available, so recovery replays without re-running the opening
        /// fixpoint. `None` (or a seed that fails verification) falls
        /// back to a cold run.
        analysis: Option<ScheduleSeed>,
    },
    /// `add_dependency(from, to)`.
    AddDep {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
    },
    /// `add_min_constraint(from, to, value)`.
    AddMin {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
        /// Minimum start-time separation in cycles.
        value: u64,
    },
    /// `add_max_constraint(from, to, value)`.
    AddMax {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
        /// Maximum start-time separation in cycles.
        value: u64,
    },
    /// `remove_edge` of the first live edge between two operations —
    /// the same resolution rule the serve protocol uses, so replay picks
    /// the identical edge.
    RemoveEdge {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
    },
    /// `set_delay(vertex, delay)`.
    SetDelay {
        /// Operation name.
        vertex: String,
        /// New execution delay.
        delay: ExecDelay,
    },
}

impl JournalOp {
    /// Renders the op as one WAL line (a JSON object).
    fn to_json(&self) -> Json {
        match self {
            JournalOp::Open { design, session } => object([
                ("op", Json::from("open")),
                ("session", Json::from(session.as_str())),
                ("design", Json::from(design.as_str())),
            ]),
            JournalOp::Snapshot {
                design,
                session,
                analysis,
            } => {
                let mut pairs = vec![
                    ("op", Json::from("snapshot")),
                    ("session", Json::from(session.as_str())),
                    ("design", Json::from(design.as_str())),
                ];
                if let Some(seed) = analysis {
                    pairs.push(("analysis", seed.to_json()));
                }
                object(pairs)
            }
            JournalOp::AddDep { from, to } => object([
                ("op", Json::from("add_dep")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
            ]),
            JournalOp::AddMin { from, to, value } => object([
                ("op", Json::from("add_min")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
                ("value", Json::from(*value as usize)),
            ]),
            JournalOp::AddMax { from, to, value } => object([
                ("op", Json::from("add_max")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
                ("value", Json::from(*value as usize)),
            ]),
            JournalOp::RemoveEdge { from, to } => object([
                ("op", Json::from("remove_edge")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
            ]),
            JournalOp::SetDelay { vertex, delay } => object([
                ("op", Json::from("set_delay")),
                ("vertex", Json::from(vertex.as_str())),
                (
                    "delay",
                    match delay {
                        ExecDelay::Unbounded => Json::from("unbounded"),
                        ExecDelay::Fixed(c) => Json::Int(*c as i64),
                    },
                ),
            ]),
        }
    }

    /// Parses one WAL line back into a journal record — the inverse of
    /// [`JournalOp`]'s WAL rendering, used to rebuild session tables from
    /// a journal directory at boot. Tolerant of older line formats: a
    /// missing `"session"` parses as an empty name (such files cannot be
    /// auto-recovered, but still parse), and a malformed `"analysis"`
    /// degrades to `None`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem
    /// (unknown op, missing field, bad value).
    pub fn from_json(json: &Json) -> Result<JournalOp, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("journal line missing \"op\"")?;
        let field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("journal op '{op}' missing \"{key}\""))
        };
        let value = || -> Result<u64, String> {
            json.get("value")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("journal op '{op}' missing a non-negative \"value\""))
        };
        let session = || {
            json.get("session")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned()
        };
        match op {
            "open" => Ok(JournalOp::Open {
                design: field("design")?,
                session: session(),
            }),
            "snapshot" => Ok(JournalOp::Snapshot {
                design: field("design")?,
                session: session(),
                analysis: json.get("analysis").and_then(ScheduleSeed::from_json),
            }),
            "add_dep" => Ok(JournalOp::AddDep {
                from: field("from")?,
                to: field("to")?,
            }),
            "add_min" => Ok(JournalOp::AddMin {
                from: field("from")?,
                to: field("to")?,
                value: value()?,
            }),
            "add_max" => Ok(JournalOp::AddMax {
                from: field("from")?,
                to: field("to")?,
                value: value()?,
            }),
            "remove_edge" => Ok(JournalOp::RemoveEdge {
                from: field("from")?,
                to: field("to")?,
            }),
            "set_delay" => Ok(JournalOp::SetDelay {
                vertex: field("vertex")?,
                delay: match json.get("delay") {
                    Some(Json::Str(s)) if s == "unbounded" => ExecDelay::Unbounded,
                    Some(d) => match d.as_i64().and_then(|v| u64::try_from(v).ok()) {
                        Some(cycles) => ExecDelay::Fixed(cycles),
                        None => return Err("journal op 'set_delay' has a bad \"delay\"".into()),
                    },
                    None => return Err("journal op 'set_delay' missing \"delay\"".into()),
                },
            }),
            other => Err(format!("unknown journal op '{other}'")),
        }
    }
}

/// The edit history of one session — a base plus the delta since; see
/// the module docs.
#[derive(Debug)]
pub struct Journal {
    /// The serve-layer session name, recorded in every base line so a
    /// restarted process can rebuild its session table from WAL files.
    name: String,
    /// `ops[0]` is always the base (`Open` or `Snapshot`); the rest is
    /// the delta of accepted edits since that base.
    ops: Vec<JournalOp>,
    /// Mirror file, opened lazily and dropped on the first write error.
    wal: Option<(PathBuf, Option<File>)>,
    /// WAL lines buffered since the last [`Journal::sync`].
    pending: String,
    /// Compact once the delta reaches this many edits; `0` disables.
    snapshot_every: usize,
    /// Compactions performed over the journal's lifetime.
    compactions: usize,
    /// Accepted edits folded into snapshots (no longer replayed).
    compacted_edits: usize,
}

impl Journal {
    /// Starts a journal for session `name` opened on `design`, optionally
    /// mirrored to `wal_path` (truncating any previous file there).
    pub fn open(name: impl Into<String>, design: String, wal_path: Option<PathBuf>) -> Journal {
        let name = name.into();
        let mut journal = Journal {
            name: name.clone(),
            ops: Vec::new(),
            wal: wal_path.map(|p| {
                let file = File::create(&p).ok();
                (p, file)
            }),
            pending: String::new(),
            snapshot_every: 0,
            compactions: 0,
            compacted_edits: 0,
        };
        journal.append(JournalOp::Open {
            design,
            session: name,
        });
        journal
    }

    /// Rebuilds a journal from already-parsed WAL records — the boot-time
    /// recovery path. The base record supplies the session name; the WAL
    /// file, when given, is reopened in **append** mode so the resumed
    /// session keeps extending its existing audit trail.
    ///
    /// # Errors
    ///
    /// When `ops` does not start with an `Open`/`Snapshot` base record.
    pub fn resume(ops: Vec<JournalOp>, wal_path: Option<PathBuf>) -> Result<Journal, String> {
        let name = match ops.first() {
            Some(JournalOp::Open { session, .. }) | Some(JournalOp::Snapshot { session, .. }) => {
                session.clone()
            }
            _ => return Err("journal does not start with an open or snapshot".to_owned()),
        };
        Ok(Journal {
            name,
            ops,
            wal: wal_path.map(|p| {
                let file = std::fs::OpenOptions::new().append(true).open(&p).ok();
                (p, file)
            }),
            pending: String::new(),
            snapshot_every: 0,
            compactions: 0,
            compacted_edits: 0,
        })
    }

    /// The session name this journal records (empty for WAL files written
    /// before names were journaled).
    pub fn session_name(&self) -> &str {
        &self.name
    }

    /// Sets the compaction threshold: once the delta since the base holds
    /// this many accepted edits, the next [`Journal::maybe_compact`]
    /// snapshots the session. `0` disables compaction.
    pub fn set_snapshot_every(&mut self, every: usize) {
        self.snapshot_every = every;
    }

    /// Records one accepted mutation and buffers its WAL mirror line
    /// (written out on the next [`Journal::sync`]).
    pub fn append(&mut self, op: JournalOp) {
        if self.wal.as_ref().is_some_and(|(_, f)| f.is_some()) {
            self.pending.push_str(&op.to_json().render());
            self.pending.push('\n');
        }
        self.ops.push(op);
    }

    /// Group commit: writes every buffered WAL line with a single write
    /// and flush. A no-op without a (live) mirror or buffered lines;
    /// the first I/O failure permanently stops mirroring.
    pub fn sync(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if let Some((_, slot @ Some(_))) = &mut self.wal {
            let file = slot.as_mut().expect("matched Some");
            if file
                .write_all(self.pending.as_bytes())
                .and_then(|()| file.flush())
                .is_err()
            {
                // Mirror is best-effort; stop writing after the first
                // failure instead of hammering a dead disk per batch.
                *slot = None;
            }
        }
        self.pending.clear();
    }

    /// `true` when WAL lines are buffered and a [`Journal::sync`] would
    /// actually write.
    pub fn dirty(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Edits recorded since the current base (open or last snapshot).
    pub fn edits(&self) -> usize {
        self.ops.len().saturating_sub(1)
    }

    /// Accepted edits over the journal's whole lifetime, including those
    /// folded into snapshots.
    pub fn total_edits(&self) -> usize {
        self.compacted_edits + self.edits()
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// `true` when the current base is a snapshot rather than the
    /// original opening design.
    pub fn snapshotted(&self) -> bool {
        matches!(self.ops.first(), Some(JournalOp::Snapshot { .. }))
    }

    /// Where the WAL mirror lives, when one was requested.
    pub fn wal_path(&self) -> Option<&std::path::Path> {
        self.wal.as_ref().map(|(p, _)| p.as_path())
    }

    /// Snapshots `session` into a new base and truncates the delta, if
    /// the compaction threshold is reached and the session state is
    /// snapshot-safe (well-posed, polar, uniquely named — see the module
    /// docs). Returns `true` when a compaction happened.
    ///
    /// The failpoint site `journal::snapshot` is evaluated before any
    /// state changes: an injected error skips this compaction attempt,
    /// and an injected panic unwinds with the journal untouched — the
    /// old base, delta, and WAL file all remain recoverable.
    pub fn maybe_compact(&mut self, session: &Session) -> bool {
        if self.snapshot_every == 0 || self.edits() < self.snapshot_every {
            return false;
        }
        if !session.posedness().is_well_posed() || !session.graph().is_polar() {
            return false; // Defer: reopening must not re-polarize or lose staleness.
        }
        if !unique_operation_names(session.graph()) {
            return false; // Defer: to_text would rename, orphaning delta edits.
        }
        // Crash window under test: nothing below may run before this.
        if rsched_graph::failpoint!("journal::snapshot").is_some() {
            return false;
        }
        let design = session.graph().to_text();
        let snapshot = JournalOp::Snapshot {
            design,
            session: self.name.clone(),
            // Snapshot-safe implies well-posed, so the session holds a
            // fresh schedule; journaling it lets recovery skip the
            // fixpoint kernel entirely.
            analysis: session
                .schedule()
                .map(|s| ScheduleSeed::capture(session.graph(), s)),
        };
        self.rewrite_wal(&snapshot);
        self.compacted_edits += self.edits();
        self.compactions += 1;
        self.ops.clear();
        self.ops.push(snapshot);
        self.pending.clear(); // Subsumed by the snapshot line just written.
        true
    }

    /// Atomically replaces the WAL mirror with a single snapshot line:
    /// write a temp file, then rename over the old path, so a torn write
    /// can never destroy the previous (still-valid) WAL. Failures stop
    /// mirroring but never fail the compaction.
    fn rewrite_wal(&mut self, snapshot: &JournalOp) {
        let Some((path, slot)) = &mut self.wal else {
            return;
        };
        if slot.is_none() {
            return; // Mirroring already gave up on this disk.
        }
        let line = format!("{}\n", snapshot.to_json().render());
        let tmp = path.with_extension("wal.tmp");
        let replaced = std::fs::write(&tmp, line.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, &*path))
            .and_then(|()| std::fs::OpenOptions::new().append(true).open(&*path));
        match replaced {
            Ok(file) => *slot = Some(file),
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                *slot = None;
            }
        }
    }

    /// Replays the journal (base + delta) through a fresh [`Session`].
    ///
    /// Deterministic: the recorded edits were all accepted against the
    /// same prefix states, so replay reproduces the exact graph, verdict,
    /// and offsets of the live session after its last accepted edit.
    /// After a compaction the base is the snapshot and only the delta
    /// replays — recovery cost is bounded by `snapshot_every`, not by
    /// the session's lifetime history.
    ///
    /// # Errors
    ///
    /// Returns a description of the first op that fails — possible only
    /// if the journal was corrupted (it records accepted edits only).
    pub fn replay(&self) -> Result<Session, String> {
        let mut ops = self.ops.iter();
        let (design, analysis) = match ops.next() {
            Some(JournalOp::Open { design, .. }) => (design, None),
            Some(JournalOp::Snapshot {
                design, analysis, ..
            }) => (design, analysis.as_ref()),
            _ => return Err("journal does not start with an open or snapshot".to_owned()),
        };
        let graph = ConstraintGraph::from_text(design)
            .map_err(|e| format!("journal replay: bad design: {e}"))?;
        // A journaled analysis that fails to instantiate (e.g. a WAL from
        // an older format) degrades to a cold open — never an error.
        let seed = analysis.and_then(|a| a.instantiate(&graph));
        let mut session = Session::open_with_seed(graph, seed)
            .map_err(|e| format!("journal replay: cannot open: {e}"))?;
        for (i, op) in ops.enumerate() {
            let vertex = |s: &Session, name: &str| {
                s.vertex_named(name)
                    .ok_or_else(|| format!("journal replay: edit {i}: no operation '{name}'"))
            };
            let outcome = match op {
                JournalOp::Open { .. } => {
                    return Err(format!("journal replay: edit {i}: duplicate open"));
                }
                JournalOp::Snapshot { .. } => {
                    return Err(format!("journal replay: edit {i}: mid-stream snapshot"));
                }
                JournalOp::AddDep { from, to } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    session.add_dependency(f, t)
                }
                JournalOp::AddMin { from, to, value } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    session.add_min_constraint(f, t, *value)
                }
                JournalOp::AddMax { from, to, value } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    session.add_max_constraint(f, t, *value)
                }
                JournalOp::RemoveEdge { from, to } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    let Some(e) = session.edge_between(f, t) else {
                        return Err(format!(
                            "journal replay: edit {i}: no live edge {from} -> {to}"
                        ));
                    };
                    session.remove_edge(e)
                }
                JournalOp::SetDelay {
                    vertex: name,
                    delay,
                } => {
                    let v = vertex(&session, name)?;
                    session.set_delay(v, *delay)
                }
            };
            if let EditOutcome::Rejected { error } = outcome {
                return Err(format!("journal replay: edit {i}: rejected: {error}"));
            }
        }
        Ok(session)
    }
}

impl Drop for Journal {
    /// Flushes any buffered WAL lines so a closed session's audit trail
    /// is complete even though syncs are batched.
    fn drop(&mut self) {
        self.sync();
    }
}

/// `true` when every operation name is unique and none collides with the
/// reserved polar-vertex names — the precondition for `to_text` emitting
/// names verbatim.
fn unique_operation_names(graph: &ConstraintGraph) -> bool {
    let mut seen = std::collections::HashSet::new();
    graph.operation_ids().all(|v| {
        let name = graph.vertex(v).name();
        name != "source" && name != "sink" && seen.insert(name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str =
        "op sync unbounded\nop alu 2\nop out 1\ndep sync alu\ndep alu out\nmax alu out 4\n";

    #[test]
    fn replay_reproduces_the_live_session() {
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let mut live = Session::open(graph).unwrap();
        let mut journal = Journal::open("s", DESIGN.to_owned(), None);

        let (alu, out) = (
            live.vertex_named("alu").unwrap(),
            live.vertex_named("out").unwrap(),
        );
        assert!(live.add_min_constraint(alu, out, 3).is_scheduled());
        journal.append(JournalOp::AddMin {
            from: "alu".into(),
            to: "out".into(),
            value: 3,
        });
        live.set_delay(alu, ExecDelay::Unbounded); // ill-posed, still journaled
        journal.append(JournalOp::SetDelay {
            vertex: "alu".into(),
            delay: ExecDelay::Unbounded,
        });

        let replayed = journal.replay().expect("journal replays");
        assert_eq!(replayed.posedness(), live.posedness());
        assert_eq!(replayed.schedule(), live.schedule());
        assert_eq!(journal.edits(), 2);
        assert_eq!(journal.total_edits(), 2);
        assert_eq!(journal.compactions(), 0);
    }

    #[test]
    fn replay_rejects_corrupt_history() {
        let mut journal = Journal::open("s", DESIGN.to_owned(), None);
        journal.append(JournalOp::AddDep {
            from: "alu".into(),
            to: "nonesuch".into(),
        });
        let err = journal.replay().unwrap_err();
        assert!(err.contains("nonesuch"), "{err}");
    }

    #[test]
    fn wal_mirror_groups_lines_per_sync() {
        let dir = std::env::temp_dir().join(format!("rsched_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.wal");
        let mut journal = Journal::open("s", DESIGN.to_owned(), Some(path.clone()));
        journal.append(JournalOp::AddMax {
            from: "alu".into(),
            to: "out".into(),
            value: 7,
        });
        // Appends only buffer: the file holds nothing until a sync.
        assert!(journal.dirty());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        journal.sync();
        assert!(!journal.dirty());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"op\":\"open\""));
        assert_eq!(
            Json::parse(lines[1]).unwrap().get("value"),
            Some(&Json::Int(7))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_syncs_buffered_lines() {
        let dir = std::env::temp_dir().join(format!("rsched_wal_drop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.wal");
        {
            let mut journal = Journal::open("s", DESIGN.to_owned(), Some(path.clone()));
            journal.append(JournalOp::AddDep {
                from: "sync".into(),
                to: "out".into(),
            });
        } // dropped here
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "drop flushed the buffered batch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_base_and_truncates_delta() {
        let dir = std::env::temp_dir().join(format!("rsched_wal_compact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.wal");
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let mut live = Session::open(graph).unwrap();
        let mut journal = Journal::open("s", DESIGN.to_owned(), Some(path.clone()));
        journal.set_snapshot_every(2);
        let alu = live.vertex_named("alu").unwrap();
        for delay in [3u64, 1, 4, 2] {
            assert!(live.set_delay(alu, ExecDelay::Fixed(delay)).is_scheduled());
            journal.append(JournalOp::SetDelay {
                vertex: "alu".into(),
                delay: ExecDelay::Fixed(delay),
            });
            journal.maybe_compact(&live);
        }
        assert_eq!(journal.compactions(), 2);
        assert_eq!(journal.total_edits(), 4);
        assert!(journal.edits() < 2, "delta truncated at each snapshot");
        assert!(journal.snapshotted());
        // The WAL was atomically rewritten: first line is the snapshot.
        journal.sync();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().next().unwrap().contains("\"op\":\"snapshot\""),
            "{text}"
        );
        // Replay from snapshot + delta matches the live session exactly.
        let replayed = journal.replay().expect("snapshot replays");
        assert_eq!(replayed.posedness(), live.posedness());
        assert_eq!(replayed.schedule(), live.schedule());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_seed_round_trips_bit_identically() {
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let live = Session::open(graph).unwrap();
        let omega = live.schedule().expect("well-posed design");
        let seed = ScheduleSeed::capture(live.graph(), omega);
        // Against the same graph re-parsed from its own text — exactly
        // what snapshot recovery does.
        let reparsed = ConstraintGraph::from_text(&live.graph().to_text()).unwrap();
        let rebuilt = seed
            .instantiate(&reparsed)
            .expect("seed instantiates against its own design text");
        assert_eq!(&rebuilt, omega, "seeded schedule must be bit-identical");
        // And the seeded open is indistinguishable from a cold open.
        let seeded = Session::open_with_seed(reparsed, Some(rebuilt)).unwrap();
        assert_eq!(seeded.schedule(), live.schedule());
        assert_eq!(seeded.posedness(), live.posedness());
        assert_eq!(seeded.stats(), live.stats());
    }

    #[test]
    fn seed_that_no_longer_matches_falls_back_to_cold_open() {
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let live = Session::open(graph).unwrap();
        let seed = ScheduleSeed::capture(live.graph(), live.schedule().unwrap());
        // A different design: names resolve nowhere.
        let other = ConstraintGraph::from_text("op a 1\nop b 2\ndep a b\n").unwrap();
        assert_eq!(seed.instantiate(&other), None);
    }

    #[test]
    fn snapshot_lines_carry_the_analysis_and_legacy_lines_still_parse() {
        let dir = std::env::temp_dir().join(format!("rsched_wal_seed_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.wal");
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let mut live = Session::open(graph).unwrap();
        let mut journal = Journal::open("sess", DESIGN.to_owned(), Some(path.clone()));
        journal.set_snapshot_every(1);
        let alu = live.vertex_named("alu").unwrap();
        assert!(live.set_delay(alu, ExecDelay::Fixed(3)).is_scheduled());
        journal.append(JournalOp::SetDelay {
            vertex: "alu".into(),
            delay: ExecDelay::Fixed(3),
        });
        assert!(journal.maybe_compact(&live));
        journal.sync();
        let text = std::fs::read_to_string(&path).unwrap();
        let snapshot = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(snapshot.get("session").and_then(Json::as_str), Some("sess"));
        let parsed = JournalOp::from_json(&snapshot).unwrap();
        let JournalOp::Snapshot {
            design, analysis, ..
        } = parsed
        else {
            panic!("first line is not a snapshot: {text}");
        };
        let seed = analysis.expect("well-posed snapshot embeds its analysis");
        let reparsed = ConstraintGraph::from_text(&design).unwrap();
        assert_eq!(
            seed.instantiate(&reparsed).as_ref(),
            live.schedule(),
            "journaled analysis rebuilds the live schedule"
        );
        // Lines from before session names / analyses were journaled must
        // still parse (empty name, no seed).
        let legacy = Json::parse(r#"{"op":"open","design":"op a 1\n"}"#).unwrap();
        match JournalOp::from_json(&legacy).unwrap() {
            JournalOp::Open { session, .. } => assert_eq!(session, ""),
            other => panic!("legacy open parsed as {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_defers_while_ill_posed() {
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let mut live = Session::open(graph).unwrap();
        let mut journal = Journal::open("s", DESIGN.to_owned(), None);
        journal.set_snapshot_every(1);
        let alu = live.vertex_named("alu").unwrap();
        // Unbounded alu under the max constraint: ill-posed, schedule stale.
        live.set_delay(alu, ExecDelay::Unbounded);
        journal.append(JournalOp::SetDelay {
            vertex: "alu".into(),
            delay: ExecDelay::Unbounded,
        });
        assert!(
            !journal.maybe_compact(&live),
            "ill-posed states must not snapshot (stale schedule would be lost)"
        );
        // Healing the graph makes the next edit snapshot-safe again.
        live.set_delay(alu, ExecDelay::Fixed(1));
        journal.append(JournalOp::SetDelay {
            vertex: "alu".into(),
            delay: ExecDelay::Fixed(1),
        });
        assert!(journal.maybe_compact(&live));
        let replayed = journal.replay().unwrap();
        assert_eq!(replayed.schedule(), live.schedule());
    }

    #[test]
    fn crash_mid_snapshot_leaves_old_journal_recoverable() {
        use rsched_graph::failpoint::{self, FailAction};
        const SCOPE: u64 = 0x54a9;
        let _s = failpoint::enter_scope(SCOPE);
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let mut live = Session::open(graph).unwrap();
        let mut journal = Journal::open("s", DESIGN.to_owned(), None);
        journal.set_snapshot_every(1);
        let alu = live.vertex_named("alu").unwrap();
        assert!(live.set_delay(alu, ExecDelay::Fixed(3)).is_scheduled());
        journal.append(JournalOp::SetDelay {
            vertex: "alu".into(),
            delay: ExecDelay::Fixed(3),
        });
        {
            let _g = failpoint::arm("journal::snapshot", Some(SCOPE), FailAction::Panic, 0, None);
            let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                journal.maybe_compact(&live)
            }));
            assert!(crashed.is_err(), "injected panic must unwind");
        }
        // Nothing was mutated: the base is still the open, the delta is
        // intact, and replay reproduces the live session.
        assert!(!journal.snapshotted());
        assert_eq!(journal.edits(), 1);
        assert_eq!(journal.compactions(), 0);
        let replayed = journal.replay().expect("pre-crash journal replays");
        assert_eq!(replayed.schedule(), live.schedule());
        // With the failpoint gone the deferred compaction goes through.
        assert!(journal.maybe_compact(&live));
        assert_eq!(journal.replay().unwrap().schedule(), live.schedule());
    }
}
