//! Append-only session journals with deterministic replay recovery.
//!
//! Every serve session keeps a [`Journal`]: the opening design text plus
//! each *accepted* mutating edit, recorded by operation **name** (not
//! `VertexId`), so the whole history replays through a fresh
//! [`Session`] regardless of internal id assignment. When a request
//! panics mid-edit the live `Session` may be half-mutated and is
//! quarantined; the journal — appended only *after* an edit is accepted —
//! still describes the last consistent state, and [`Journal::replay`]
//! rebuilds it deterministically. Replay is bit-identical to the live
//! session at every prefix (`posedness()`, offsets, anchor roster): the
//! engine's differential guarantees already pin every edit path to the
//! cold scheduler, and the journal is exactly that edit sequence.
//!
//! Journals can optionally be mirrored to a write-ahead file (one JSON
//! object per line) under `--journal-dir`, giving operators an audit
//! trail that survives the process. Mirror I/O errors are swallowed:
//! recovery reads only the in-memory journal, and a full disk must never
//! take the service down.

use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;

use rsched_graph::{ConstraintGraph, ExecDelay};

use crate::json::{object, Json};
use crate::session::{EditOutcome, Session};

/// One replayable session mutation, keyed by operation names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// `Session::open` on a design in the graph text format.
    Open {
        /// The design source; replay re-parses it.
        design: String,
    },
    /// `add_dependency(from, to)`.
    AddDep {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
    },
    /// `add_min_constraint(from, to, value)`.
    AddMin {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
        /// Minimum start-time separation in cycles.
        value: u64,
    },
    /// `add_max_constraint(from, to, value)`.
    AddMax {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
        /// Maximum start-time separation in cycles.
        value: u64,
    },
    /// `remove_edge` of the first live edge between two operations —
    /// the same resolution rule the serve protocol uses, so replay picks
    /// the identical edge.
    RemoveEdge {
        /// Tail operation name.
        from: String,
        /// Head operation name.
        to: String,
    },
    /// `set_delay(vertex, delay)`.
    SetDelay {
        /// Operation name.
        vertex: String,
        /// New execution delay.
        delay: ExecDelay,
    },
}

impl JournalOp {
    /// Renders the op as one WAL line (a JSON object).
    fn to_json(&self) -> Json {
        match self {
            JournalOp::Open { design } => object([
                ("op", Json::from("open")),
                ("design", Json::from(design.as_str())),
            ]),
            JournalOp::AddDep { from, to } => object([
                ("op", Json::from("add_dep")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
            ]),
            JournalOp::AddMin { from, to, value } => object([
                ("op", Json::from("add_min")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
                ("value", Json::from(*value as usize)),
            ]),
            JournalOp::AddMax { from, to, value } => object([
                ("op", Json::from("add_max")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
                ("value", Json::from(*value as usize)),
            ]),
            JournalOp::RemoveEdge { from, to } => object([
                ("op", Json::from("remove_edge")),
                ("from", Json::from(from.as_str())),
                ("to", Json::from(to.as_str())),
            ]),
            JournalOp::SetDelay { vertex, delay } => object([
                ("op", Json::from("set_delay")),
                ("vertex", Json::from(vertex.as_str())),
                (
                    "delay",
                    match delay {
                        ExecDelay::Unbounded => Json::from("unbounded"),
                        ExecDelay::Fixed(c) => Json::Int(*c as i64),
                    },
                ),
            ]),
        }
    }
}

/// The append-only edit history of one session; see the module docs.
#[derive(Debug)]
pub struct Journal {
    ops: Vec<JournalOp>,
    /// Mirror file, opened lazily and dropped on the first write error.
    wal: Option<(PathBuf, Option<File>)>,
}

impl Journal {
    /// Starts a journal for a session opened on `design`, optionally
    /// mirrored to `wal_path` (truncating any previous file there).
    pub fn open(design: String, wal_path: Option<PathBuf>) -> Journal {
        let mut journal = Journal {
            ops: Vec::new(),
            wal: wal_path.map(|p| {
                let file = File::create(&p).ok();
                (p, file)
            }),
        };
        journal.append(JournalOp::Open { design });
        journal
    }

    /// Records one accepted mutation (and mirrors it to the WAL).
    pub fn append(&mut self, op: JournalOp) {
        if let Some((_, Some(file))) = &mut self.wal {
            let line = format!("{}\n", op.to_json().render());
            if file
                .write_all(line.as_bytes())
                .and_then(|()| file.flush())
                .is_err()
            {
                // Mirror is best-effort; stop writing after the first
                // failure instead of hammering a dead disk per edit.
                self.wal.as_mut().expect("checked above").1 = None;
            }
        }
        self.ops.push(op);
    }

    /// Edits recorded after the opening design.
    pub fn edits(&self) -> usize {
        self.ops.len().saturating_sub(1)
    }

    /// Where the WAL mirror lives, when one was requested.
    pub fn wal_path(&self) -> Option<&std::path::Path> {
        self.wal.as_ref().map(|(p, _)| p.as_path())
    }

    /// Replays the journal through a fresh [`Session`].
    ///
    /// Deterministic: the recorded edits were all accepted against the
    /// same prefix states, so replay reproduces the exact graph, verdict,
    /// and offsets of the live session after its last accepted edit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first op that fails — possible only
    /// if the journal was corrupted (it records accepted edits only).
    pub fn replay(&self) -> Result<Session, String> {
        let mut ops = self.ops.iter();
        let Some(JournalOp::Open { design }) = ops.next() else {
            return Err("journal does not start with an open".to_owned());
        };
        let graph = ConstraintGraph::from_text(design)
            .map_err(|e| format!("journal replay: bad design: {e}"))?;
        let mut session =
            Session::open(graph).map_err(|e| format!("journal replay: cannot open: {e}"))?;
        for (i, op) in ops.enumerate() {
            let vertex = |s: &Session, name: &str| {
                s.vertex_named(name)
                    .ok_or_else(|| format!("journal replay: edit {i}: no operation '{name}'"))
            };
            let outcome = match op {
                JournalOp::Open { .. } => {
                    return Err(format!("journal replay: edit {i}: duplicate open"));
                }
                JournalOp::AddDep { from, to } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    session.add_dependency(f, t)
                }
                JournalOp::AddMin { from, to, value } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    session.add_min_constraint(f, t, *value)
                }
                JournalOp::AddMax { from, to, value } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    session.add_max_constraint(f, t, *value)
                }
                JournalOp::RemoveEdge { from, to } => {
                    let (f, t) = (vertex(&session, from)?, vertex(&session, to)?);
                    let Some(e) = session.edge_between(f, t) else {
                        return Err(format!(
                            "journal replay: edit {i}: no live edge {from} -> {to}"
                        ));
                    };
                    session.remove_edge(e)
                }
                JournalOp::SetDelay {
                    vertex: name,
                    delay,
                } => {
                    let v = vertex(&session, name)?;
                    session.set_delay(v, *delay)
                }
            };
            if let EditOutcome::Rejected { error } = outcome {
                return Err(format!("journal replay: edit {i}: rejected: {error}"));
            }
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str =
        "op sync unbounded\nop alu 2\nop out 1\ndep sync alu\ndep alu out\nmax alu out 4\n";

    #[test]
    fn replay_reproduces_the_live_session() {
        let graph = ConstraintGraph::from_text(DESIGN).unwrap();
        let mut live = Session::open(graph).unwrap();
        let mut journal = Journal::open(DESIGN.to_owned(), None);

        let (alu, out) = (
            live.vertex_named("alu").unwrap(),
            live.vertex_named("out").unwrap(),
        );
        assert!(live.add_min_constraint(alu, out, 3).is_scheduled());
        journal.append(JournalOp::AddMin {
            from: "alu".into(),
            to: "out".into(),
            value: 3,
        });
        live.set_delay(alu, ExecDelay::Unbounded); // ill-posed, still journaled
        journal.append(JournalOp::SetDelay {
            vertex: "alu".into(),
            delay: ExecDelay::Unbounded,
        });

        let replayed = journal.replay().expect("journal replays");
        assert_eq!(replayed.posedness(), live.posedness());
        assert_eq!(replayed.schedule(), live.schedule());
        assert_eq!(journal.edits(), 2);
    }

    #[test]
    fn replay_rejects_corrupt_history() {
        let mut journal = Journal::open(DESIGN.to_owned(), None);
        journal.append(JournalOp::AddDep {
            from: "alu".into(),
            to: "nonesuch".into(),
        });
        let err = journal.replay().unwrap_err();
        assert!(err.contains("nonesuch"), "{err}");
    }

    #[test]
    fn wal_mirror_writes_one_line_per_op() {
        let dir = std::env::temp_dir().join(format!("rsched_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.wal");
        let mut journal = Journal::open(DESIGN.to_owned(), Some(path.clone()));
        journal.append(JournalOp::AddMax {
            from: "alu".into(),
            to: "out".into(),
            value: 7,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"op\":\"open\""));
        assert_eq!(
            Json::parse(lines[1]).unwrap().get("value"),
            Some(&Json::Int(7))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
