//! The JSON-lines scheduling service behind `rsched serve`.
//!
//! One request per line on the input, one response per line on the
//! output. Every request carries a client-chosen `"id"` that is echoed in
//! the response, so clients may pipeline requests and correlate answers —
//! responses for *different* sessions can arrive out of order. Requests
//! for the *same* session are executed in arrival order: sessions are
//! pinned to one worker of a bounded [`std::thread`] pool by a hash of
//! the session name, which keeps edit semantics sequential without a
//! global lock.
//!
//! ## Protocol
//!
//! ```text
//! {"id":1,"op":"open","session":"s","design":"op a 1\nop b 2\ndep a b\n"}
//! {"id":2,"op":"edit","session":"s","kind":"add_max","from":"a","to":"b","value":4}
//! {"id":3,"op":"schedule","session":"s"}
//! {"id":4,"op":"stats","session":"s"}
//! {"id":5,"op":"close","session":"s"}
//! ```
//!
//! `"kind"` is one of `add_dep`, `add_min`, `add_max` (with `"value"`),
//! `remove_edge` (endpoints by name), or `set_delay` (with `"vertex"` and
//! `"delay"`: a cycle count or `"unbounded"`). Responses are
//! `{"id":…,"ok":true,…}` or `{"id":…,"ok":false,"error":"…"}`.
//!
//! One sessionless request exists: `batch_schedule` cold-schedules many
//! independent designs in a single round trip, fanning them across a
//! scoped thread pool inside the handling worker:
//!
//! ```text
//! {"id":6,"op":"batch_schedule","threads":4,
//!  "designs":[{"name":"d0","design":"op a 1\n…"},{"name":"d1","design":"…"}]}
//! ```
//!
//! The response carries `"results"`, one entry per design **in input
//! order** (independent of completion order), each with the design's
//! verdict and iteration count or an in-band error.
//!
//! Each request honors a deadline (the `ServeConfig` default, overridable
//! per request via `"deadline_ms"`), measured from the moment the line is
//! read; a request still queued when its deadline passes is answered with
//! an error instead of being executed. On end of input the service stops
//! accepting work, drains every queue, joins the workers, and returns a
//! summary — a clean EOF shutdown needs no special request.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use rsched_core::{schedule, ScheduleError, WellPosedness};
use rsched_graph::{ConstraintGraph, ExecDelay};

use crate::json::{object, Json};
use crate::session::{EditOutcome, Session};

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (sessions are pinned to workers); clamped to ≥ 1.
    pub workers: usize,
    /// Default per-request deadline; `None` means no deadline unless the
    /// request carries `"deadline_ms"`.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            deadline: None,
        }
    }
}

/// What a [`serve`] run processed, returned after EOF shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (including errors).
    pub requests: usize,
    /// Requests answered with `"ok":false`.
    pub errors: usize,
    /// `open` requests that created a session.
    pub sessions_opened: usize,
}

struct Job {
    id: Json,
    request: Json,
    accepted: Instant,
    deadline: Option<Duration>,
}

/// Every op the protocol understands; anything else is rejected at
/// intake with the request id echoed.
const KNOWN_OPS: [&str; 6] = [
    "open",
    "edit",
    "schedule",
    "stats",
    "close",
    "batch_schedule",
];

/// Runs the service until `input` reaches EOF, writing responses to
/// `output`.
///
/// # Errors
///
/// Only I/O errors on the transport are fatal; malformed requests are
/// answered in-band with `"ok":false`.
pub fn serve<R, W>(input: R, output: W, config: &ServeConfig) -> io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    let n_workers = config.workers.max(1);
    let out = Mutex::new(CountingWriter {
        inner: output,
        responses: 0,
        errors: 0,
    });
    let opened = Mutex::new(0usize);

    thread::scope(|scope| -> io::Result<()> {
        let mut queues: Vec<Sender<Job>> = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = mpsc::channel();
            queues.push(tx);
            let out = &out;
            let opened = &opened;
            scope.spawn(move || worker(rx, out, opened));
        }

        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let request = match Json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    respond(&out, fail(Json::Null, format!("malformed request: {e}")))?;
                    continue;
                }
            };
            let id = request.get("id").cloned().unwrap_or(Json::Null);
            // Validate the op at intake so a frame with a missing or
            // unknown op is answered with its id echoed even when it also
            // lacks a "session" (which only known session ops require).
            let op = match request.get("op").and_then(Json::as_str) {
                Some(op) => op,
                None => {
                    respond(&out, fail(id, "missing \"op\""))?;
                    continue;
                }
            };
            if !KNOWN_OPS.contains(&op) {
                respond(&out, fail(id, format!("unknown op '{op}'")))?;
                continue;
            }
            // `batch_schedule` is stateless (it opens no session), so it is
            // spread over workers by request id instead of a session pin.
            let slot = if op == "batch_schedule" {
                pin(&id.render(), n_workers)
            } else {
                let Some(session) = request.get("session").and_then(Json::as_str) else {
                    respond(&out, fail(id, "missing \"session\""))?;
                    continue;
                };
                pin(session, n_workers)
            };
            let deadline = request
                .get("deadline_ms")
                .and_then(Json::as_i64)
                .map(|ms| Duration::from_millis(ms.max(0) as u64))
                .or(config.deadline);
            let job = Job {
                id,
                request,
                accepted: Instant::now(),
                deadline,
            };
            if queues[slot].send(job).is_err() {
                // A worker can only disappear by panicking; surface it.
                return Err(io::Error::other("service worker died"));
            }
        }
        drop(queues); // EOF: close every queue so workers drain and exit.
        Ok(())
    })?;

    let writer = out.into_inner().expect("no worker holds the lock anymore");
    Ok(ServeSummary {
        requests: writer.responses,
        errors: writer.errors,
        sessions_opened: opened.into_inner().expect("workers joined"),
    })
}

/// FNV-1a pin of a session name to a worker slot.
fn pin(session: &str, n_workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_workers as u64) as usize
}

struct CountingWriter<W: Write> {
    inner: W,
    responses: usize,
    errors: usize,
}

fn respond<W: Write>(out: &Mutex<CountingWriter<W>>, response: Json) -> io::Result<()> {
    let mut guard = out.lock().expect("response writer poisoned");
    guard.responses += 1;
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        guard.errors += 1;
    }
    let line = response.render();
    guard.inner.write_all(line.as_bytes())?;
    guard.inner.write_all(b"\n")?;
    guard.inner.flush()
}

fn fail(id: Json, message: impl Into<String>) -> Json {
    object([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

fn worker<W: Write>(rx: Receiver<Job>, out: &Mutex<CountingWriter<W>>, opened: &Mutex<usize>) {
    let mut sessions: HashMap<String, Session> = HashMap::new();
    while let Ok(job) = rx.recv() {
        let expired = job.deadline.is_some_and(|d| job.accepted.elapsed() > d);
        let response = if expired {
            fail(job.id, "deadline exceeded before execution")
        } else {
            handle(&mut sessions, job.id, &job.request, opened)
        };
        if respond(out, response).is_err() {
            return; // Output gone; nothing sensible left to do.
        }
    }
}

fn handle(
    sessions: &mut HashMap<String, Session>,
    id: Json,
    request: &Json,
    opened: &Mutex<usize>,
) -> Json {
    let op = match request.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return fail(id, "missing \"op\""),
    };
    if op == "batch_schedule" {
        return batch_schedule(id, request);
    }
    let name = request
        .get("session")
        .and_then(Json::as_str)
        .expect("dispatcher verified")
        .to_owned();
    match op {
        "open" => {
            let Some(design) = request.get("design").and_then(Json::as_str) else {
                return fail(id, "open needs a \"design\" (graph text format)");
            };
            let graph = match ConstraintGraph::from_text(design) {
                Ok(g) => g,
                Err(e) => return fail(id, format!("bad design: {e}")),
            };
            let session = match Session::open(graph) {
                Ok(s) => s,
                Err(e) => return fail(id, format!("cannot open session: {e}")),
            };
            *opened.lock().expect("open counter poisoned") += 1;
            let body = [
                ("vertices", Json::from(session.graph().n_vertices())),
                ("edges", Json::from(session.graph().n_edges())),
                ("anchors", Json::from(session.graph().n_anchors())),
                ("verdict", verdict_json(&session)),
            ];
            let replaced = sessions.insert(name, session).is_some();
            let mut pairs = vec![("id", id), ("ok", Json::Bool(true))];
            pairs.extend(body);
            pairs.push(("replaced", Json::Bool(replaced)));
            object(pairs)
        }
        "edit" => with_session(sessions, &name, id, |id, s| edit(s, id, request)),
        "schedule" => with_session(sessions, &name, id, |id, s| {
            let mut pairs = vec![
                ("id", id),
                ("ok", Json::Bool(true)),
                ("verdict", verdict_json(s)),
            ];
            if let Some(omega) = s.schedule() {
                let anchors = Json::Array(
                    omega
                        .anchors()
                        .iter()
                        .map(|&a| Json::from(s.graph().vertex(a).name()))
                        .collect(),
                );
                let offsets = Json::Object(
                    s.graph()
                        .vertex_ids()
                        .map(|v| {
                            let row = Json::Object(
                                omega
                                    .offsets_of(v)
                                    .map(|(a, o)| {
                                        (s.graph().vertex(a).name().to_owned(), Json::Int(o))
                                    })
                                    .collect(),
                            );
                            (s.graph().vertex(v).name().to_owned(), row)
                        })
                        .collect(),
                );
                pairs.push(("anchors", anchors));
                pairs.push(("offsets", offsets));
                pairs.push(("stale", Json::Bool(!s.posedness().is_well_posed())));
            }
            object(pairs)
        }),
        "stats" => with_session(sessions, &name, id, |id, s| {
            let st = s.stats();
            object([
                ("id", id),
                ("ok", Json::Bool(true)),
                ("edits", Json::from(st.edits)),
                ("rejected", Json::from(st.rejected)),
                ("noops", Json::from(st.noops)),
                ("reschedules", Json::from(st.reschedules)),
                ("warm_anchor_columns", Json::from(st.warm_anchor_columns)),
                ("cold_anchor_columns", Json::from(st.cold_anchor_columns)),
                ("iterations", Json::from(st.iterations)),
                ("ill_posed", Json::from(st.ill_posed)),
                ("unfeasible", Json::from(st.unfeasible)),
                ("containment_checks", Json::from(st.containment_checks)),
                ("vertices", Json::from(s.graph().n_vertices())),
                ("edges", Json::from(s.graph().n_edges())),
            ])
        }),
        "close" => {
            if sessions.remove(&name).is_some() {
                object([
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("closed", Json::from(true)),
                ])
            } else {
                fail(id, format!("unknown session '{name}'"))
            }
        }
        other => fail(id, format!("unknown op '{other}'")),
    }
}

/// Schedules each design in `"designs"` independently — no session state
/// is created — fanning the batch across a scoped pool of `"threads"`
/// workers. Each design runs the cold single-thread scheduler, so results
/// are bit-identical to individual `open` requests; the response lists
/// them in input order regardless of completion order.
fn batch_schedule(id: Json, request: &Json) -> Json {
    let Some(designs) = request.get("designs").and_then(Json::as_array) else {
        return fail(id, "batch_schedule needs a \"designs\" array");
    };
    let threads = request
        .get("threads")
        .and_then(Json::as_i64)
        .map_or(1, |t| t.max(1) as usize)
        .min(designs.len().max(1));
    let mut results = vec![Json::Null; designs.len()];
    let next = AtomicUsize::new(0);
    let (res_tx, res_rx) = mpsc::channel::<(usize, Json)>();
    thread::scope(|scope| {
        for _ in 0..threads {
            let res_tx = res_tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(entry) = designs.get(i) else { break };
                if res_tx.send((i, batch_entry(entry))).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        for (i, result) in res_rx {
            results[i] = result;
        }
    });
    object([
        ("id", id),
        ("ok", Json::Bool(true)),
        ("results", Json::Array(results)),
    ])
}

/// Parses, polarizes, and cold-schedules one `{"name", "design"}` entry.
fn batch_entry(entry: &Json) -> Json {
    let name = Json::from(entry.get("name").and_then(Json::as_str).unwrap_or(""));
    let bad = |name: Json, error: String| {
        object([
            ("name", name),
            ("ok", Json::Bool(false)),
            ("error", Json::Str(error)),
        ])
    };
    let Some(design) = entry.get("design").and_then(Json::as_str) else {
        return bad(name, "missing \"design\"".to_owned());
    };
    let mut graph = match ConstraintGraph::from_text(design) {
        Ok(g) => g,
        Err(e) => return bad(name, format!("bad design: {e}")),
    };
    if !graph.is_polar() {
        if let Err(e) = graph.polarize() {
            return bad(name, format!("bad design: {e}"));
        }
    }
    match schedule(&graph) {
        Ok(omega) => object([
            ("name", name),
            ("ok", Json::Bool(true)),
            ("verdict", Json::from("well-posed")),
            ("iterations", Json::from(omega.iterations())),
            (
                "anchors",
                Json::Array(
                    omega
                        .anchors()
                        .iter()
                        .map(|&a| Json::from(graph.vertex(a).name()))
                        .collect(),
                ),
            ),
            ("vertices", Json::from(graph.n_vertices())),
            ("edges", Json::from(graph.n_edges())),
        ]),
        Err(ScheduleError::Unfeasible { witness }) => object([
            ("name", name),
            ("ok", Json::Bool(true)),
            (
                "verdict",
                object([
                    ("kind", Json::from("unfeasible")),
                    ("witness", Json::from(graph.vertex(witness).name())),
                ]),
            ),
        ]),
        Err(ScheduleError::IllPosed { from, to, missing }) => object([
            ("name", name),
            ("ok", Json::Bool(true)),
            (
                "verdict",
                object([
                    ("kind", Json::from("ill-posed")),
                    ("from", Json::from(graph.vertex(from).name())),
                    ("to", Json::from(graph.vertex(to).name())),
                    (
                        "missing",
                        Json::Array(
                            missing
                                .iter()
                                .map(|&a| Json::from(graph.vertex(a).name()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]),
        Err(e) => bad(name, format!("cannot schedule: {e}")),
    }
}

fn with_session(
    sessions: &mut HashMap<String, Session>,
    name: &str,
    id: Json,
    f: impl FnOnce(Json, &mut Session) -> Json,
) -> Json {
    match sessions.get_mut(name) {
        Some(s) => f(id, s),
        None => fail(id, format!("unknown session '{name}'")),
    }
}

fn edit(session: &mut Session, id: Json, request: &Json) -> Json {
    let Some(kind) = request.get("kind").and_then(Json::as_str) else {
        return fail(id, "edit needs a \"kind\"");
    };
    let vertex = |key: &str| -> Result<rsched_graph::VertexId, String> {
        let name = request
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("edit kind '{kind}' needs \"{key}\""))?;
        session
            .vertex_named(name)
            .ok_or_else(|| format!("no operation named '{name}'"))
    };
    let value = || -> Result<u64, String> {
        request
            .get("value")
            .and_then(Json::as_i64)
            .and_then(|v| u64::try_from(v).ok())
            .ok_or_else(|| format!("edit kind '{kind}' needs a non-negative \"value\""))
    };
    let outcome = match kind {
        "add_dep" => match (vertex("from"), vertex("to")) {
            (Ok(f), Ok(t)) => session.add_dependency(f, t),
            (Err(e), _) | (_, Err(e)) => return fail(id, e),
        },
        "add_min" => match (vertex("from"), vertex("to"), value()) {
            (Ok(f), Ok(t), Ok(v)) => session.add_min_constraint(f, t, v),
            (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(id, e),
        },
        "add_max" => match (vertex("from"), vertex("to"), value()) {
            (Ok(f), Ok(t), Ok(v)) => session.add_max_constraint(f, t, v),
            (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(id, e),
        },
        "remove_edge" => match (vertex("from"), vertex("to")) {
            (Ok(f), Ok(t)) => match session.edge_between(f, t) {
                Some(e) => session.remove_edge(e),
                None => return fail(id, "no live edge between those operations"),
            },
            (Err(e), _) | (_, Err(e)) => return fail(id, e),
        },
        "set_delay" => {
            let v = match vertex("vertex") {
                Ok(v) => v,
                Err(e) => return fail(id, e),
            };
            let delay = match request.get("delay") {
                Some(Json::Str(s)) if s == "unbounded" => ExecDelay::Unbounded,
                Some(d) => match d.as_i64().and_then(|v| u64::try_from(v).ok()) {
                    Some(cycles) => ExecDelay::Fixed(cycles),
                    None => return fail(id, "\"delay\" must be a cycle count or \"unbounded\""),
                },
                None => return fail(id, "edit kind 'set_delay' needs \"delay\""),
            };
            session.set_delay(v, delay)
        }
        other => return fail(id, format!("unknown edit kind '{other}'")),
    };
    outcome_json(session, id, &outcome)
}

fn outcome_json(session: &Session, id: Json, outcome: &EditOutcome) -> Json {
    match outcome {
        EditOutcome::Unchanged => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("unchanged")),
        ]),
        EditOutcome::Rescheduled {
            iterations,
            warm_anchors,
            total_anchors,
        } => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("rescheduled")),
            ("iterations", Json::from(*iterations)),
            ("warm_anchors", Json::from(*warm_anchors)),
            ("total_anchors", Json::from(*total_anchors)),
        ]),
        EditOutcome::IllPosed { violations } => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("ill-posed")),
            (
                "violations",
                Json::Array(
                    violations
                        .iter()
                        .map(|v| {
                            object([
                                ("from", Json::from(session.graph().vertex(v.from).name())),
                                ("to", Json::from(session.graph().vertex(v.to).name())),
                                (
                                    "missing",
                                    Json::Array(
                                        v.missing
                                            .iter()
                                            .map(|&a| Json::from(session.graph().vertex(a).name()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        EditOutcome::Unfeasible { witness } => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("unfeasible")),
            (
                "witness",
                Json::from(session.graph().vertex(*witness).name()),
            ),
        ]),
        EditOutcome::Rejected { error } => fail(id, format!("edit rejected: {error}")),
    }
}

fn verdict_json(session: &Session) -> Json {
    match session.posedness() {
        WellPosedness::WellPosed => Json::from("well-posed"),
        WellPosedness::IllPosed { violations } => object([
            ("kind", Json::from("ill-posed")),
            ("violations", Json::from(violations.len())),
        ]),
        WellPosedness::Unfeasible { witness } => object([
            ("kind", Json::from("unfeasible")),
            (
                "witness",
                Json::from(session.graph().vertex(*witness).name()),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str =
        "op sync unbounded\nop alu 2\nop out 1\ndep sync alu\ndep alu out\nmax alu out 4\n";

    fn run_lines(lines: &[String], config: &ServeConfig) -> (Vec<Json>, ServeSummary) {
        let input = lines.join("\n");
        let mut output = Vec::new();
        let summary = serve(input.as_bytes(), &mut output, config).unwrap();
        let responses = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        (responses, summary)
    }

    fn req(id: i64, session: &str, rest: &str) -> String {
        format!(r#"{{"id":{id},"session":"{session}",{rest}}}"#)
    }

    fn by_id(responses: &[Json], id: i64) -> &Json {
        responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_i64) == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    }

    #[test]
    fn open_edit_schedule_stats_close_round_trip() {
        let design = DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(
                2,
                "s",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
            req(3, "s", r#""op":"schedule""#),
            req(4, "s", r#""op":"stats""#),
            req(5, "s", r#""op":"close""#),
            req(6, "s", r#""op":"schedule""#),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 6);
        assert_eq!(summary.sessions_opened, 1);
        assert_eq!(
            by_id(&responses, 1).get("verdict").unwrap(),
            &Json::from("well-posed")
        );
        let edit = by_id(&responses, 2);
        assert_eq!(edit.get("outcome").unwrap(), &Json::from("rescheduled"));
        assert_eq!(
            edit.get("warm_anchors").unwrap(),
            edit.get("total_anchors").unwrap(),
            "additive edits warm-start every anchor"
        );
        let sched = by_id(&responses, 3);
        let sigma = sched
            .get("offsets")
            .and_then(|o| o.get("out"))
            .and_then(|r| r.get("sync"))
            .and_then(Json::as_i64);
        assert_eq!(sigma, Some(3), "min constraint pushed out to 3 after sync");
        assert!(
            by_id(&responses, 4)
                .get("reschedules")
                .and_then(Json::as_i64)
                >= Some(2)
        );
        assert_eq!(by_id(&responses, 5).get("ok"), Some(&Json::Bool(true)));
        // After close, the session is gone.
        assert_eq!(by_id(&responses, 6).get("ok"), Some(&Json::Bool(false)));
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn malformed_and_unknown_requests_answer_in_band() {
        let lines = vec![
            "{not json".to_owned(),
            req(1, "nope", r#""op":"schedule""#),
            req(2, "s", r#""op":"frobnicate""#),
            r#"{"id":3,"op":"schedule"}"#.to_owned(),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.errors, 4);
        assert!(responses.iter().any(|r| r.get("id") == Some(&Json::Null)
            && r.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("malformed")));
        assert!(by_id(&responses, 3)
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("session"));
    }

    #[test]
    fn unknown_or_missing_op_echoes_id_with_exact_shape() {
        // Locks the error contract: a frame with an unknown or missing
        // op — even without a "session" — is answered in-band with its
        // id echoed (null when the frame had none or did not parse), as
        // exactly `{"id":…,"ok":false,"error":…}`.
        let lines = vec![
            r#"{"id":7,"op":"frobnicate"}"#.to_owned(),
            r#"{"id":"x9"}"#.to_owned(),
            "{not json".to_owned(),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 3);
        assert_eq!(
            by_id(&responses, 7),
            &Json::parse(r#"{"id":7,"ok":false,"error":"unknown op 'frobnicate'"}"#).unwrap()
        );
        let missing_op = responses
            .iter()
            .find(|r| r.get("id") == Some(&Json::Str("x9".to_owned())))
            .expect("missing-op frame must be answered");
        assert_eq!(
            missing_op,
            &Json::parse(r#"{"id":"x9","ok":false,"error":"missing \"op\""}"#).unwrap()
        );
        let malformed = responses
            .iter()
            .find(|r| r.get("id") == Some(&Json::Null))
            .expect("unparsable frame must be answered under id null");
        assert_eq!(malformed.get("ok"), Some(&Json::Bool(false)));
        assert!(malformed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("malformed request:"));
    }

    #[test]
    fn zero_deadline_expires_before_execution() {
        let design = DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(2, "s", r#""op":"schedule","deadline_ms":0"#),
            req(3, "s", r#""op":"schedule""#),
        ];
        let (responses, _) = run_lines(&lines, &ServeConfig::default());
        let expired = by_id(&responses, 2);
        assert_eq!(expired.get("ok"), Some(&Json::Bool(false)));
        assert!(expired
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("deadline"));
        // Later requests on the same session still execute.
        assert_eq!(by_id(&responses, 3).get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn batch_schedule_returns_results_in_input_order() {
        let design = DESIGN.replace('\n', "\\n");
        // d1 is unfeasible (min 9 against max 4), d2 is malformed.
        let infeasible = format!("{design}min alu out 9\\n");
        let lines = vec![format!(
            concat!(
                r#"{{"id":1,"op":"batch_schedule","threads":4,"designs":["#,
                r#"{{"name":"d0","design":"{d0}"}},"#,
                r#"{{"name":"d1","design":"{d1}"}},"#,
                r#"{{"name":"d2","design":"op oops"}},"#,
                r#"{{"name":"d3","design":"{d0}"}}]}}"#
            ),
            d0 = design,
            d1 = infeasible,
        )];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.sessions_opened, 0);
        let response = by_id(&responses, 1);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let results = response.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.get("name").and_then(Json::as_str),
                Some(&*format!("d{i}"))
            );
        }
        assert_eq!(
            results[0].get("verdict").unwrap(),
            &Json::from("well-posed")
        );
        assert_eq!(
            results[1]
                .get("verdict")
                .and_then(|v| v.get("kind"))
                .and_then(Json::as_str),
            Some("unfeasible")
        );
        assert_eq!(results[2].get("ok"), Some(&Json::Bool(false)));
        assert!(results[2]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("bad design"));
        // The same design gives the same result wherever it sits in the batch.
        assert_eq!(results[3].get("iterations"), results[0].get("iterations"));
        assert_eq!(results[3].get("anchors"), results[0].get("anchors"));
    }

    #[test]
    fn batch_schedule_thread_counts_agree() {
        let design = DESIGN.replace('\n', "\\n");
        let batch = |id: i64, threads: usize| {
            let entries: Vec<String> = (0..6)
                .map(|i| format!(r#"{{"name":"d{i}","design":"{design}"}}"#))
                .collect();
            format!(
                r#"{{"id":{id},"op":"batch_schedule","threads":{threads},"designs":[{}]}}"#,
                entries.join(",")
            )
        };
        let (responses, _) = run_lines(&[batch(1, 1), batch(2, 8)], &ServeConfig::default());
        let serial = by_id(&responses, 1).get("results").cloned();
        let fanned = by_id(&responses, 2).get("results").cloned();
        assert!(serial.is_some());
        assert_eq!(serial, fanned);
    }

    #[test]
    fn sessions_are_independent_across_workers() {
        let design = DESIGN.replace('\n', "\\n");
        let mut lines = Vec::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let base = (i as i64) * 10;
            lines.push(req(
                base + 1,
                name,
                &format!(r#""op":"open","design":"{design}""#),
            ));
            lines.push(req(
                base + 2,
                name,
                r#""op":"edit","kind":"set_delay","vertex":"alu","delay":"unbounded""#,
            ));
            lines.push(req(
                base + 3,
                name,
                r#""op":"edit","kind":"set_delay","vertex":"alu","delay":2"#,
            ));
            lines.push(req(base + 4, name, r#""op":"schedule""#));
        }
        let (responses, summary) = run_lines(
            &lines,
            &ServeConfig {
                workers: 3,
                deadline: None,
            },
        );
        assert_eq!(summary.sessions_opened, 4);
        assert_eq!(summary.errors, 0);
        for i in 0..4 {
            let base = (i as i64) * 10;
            // Unbounded alu makes the max constraint ill-posed…
            assert_eq!(
                by_id(&responses, base + 2)
                    .get("outcome")
                    .and_then(Json::as_str),
                Some("ill-posed")
            );
            // …and restoring the fixed delay heals it, in order, per session.
            assert_eq!(
                by_id(&responses, base + 3)
                    .get("outcome")
                    .and_then(Json::as_str),
                Some("rescheduled")
            );
            assert_eq!(
                by_id(&responses, base + 4).get("verdict").unwrap(),
                &Json::from("well-posed")
            );
        }
    }
}
