//! The JSON-lines scheduling service behind `rsched serve`.
//!
//! One request per line on the input, one response per line on the
//! output. Every request carries a client-chosen `"id"` that is echoed in
//! the response, so clients may pipeline requests and correlate answers —
//! responses for *different* sessions can arrive out of order. Requests
//! for the *same* session are executed in arrival order: sessions are
//! pinned to one worker of a bounded [`std::thread`] pool by a hash of
//! the session name ([`shard_of`]), which keeps edit semantics sequential
//! without a global lock.
//!
//! The session tables, request validation, execution, and panic
//! isolation all live in the transport-agnostic [`Router`]; this module's
//! [`serve`] wires it to a stdin/stdout byte stream, and the `rsched-net`
//! crate wires the same router to a socket listener — both transports
//! produce bit-identical responses for the same op stream.
//!
//! ## Protocol
//!
//! ```text
//! {"id":1,"op":"open","session":"s","design":"op a 1\nop b 2\ndep a b\n"}
//! {"id":2,"op":"edit","session":"s","kind":"add_max","from":"a","to":"b","value":4}
//! {"id":3,"op":"schedule","session":"s"}
//! {"id":4,"op":"stats","session":"s"}
//! {"id":5,"op":"recover","session":"s"}
//! {"id":6,"op":"close","session":"s"}
//! ```
//!
//! `"kind"` is one of `add_dep`, `add_min`, `add_max` (with `"value"`),
//! `remove_edge` (endpoints by name), or `set_delay` (with `"vertex"` and
//! `"delay"`: a cycle count or `"unbounded"`). Responses are
//! `{"id":…,"ok":true,…}` or `{"id":…,"ok":false,"error":"…"}`.
//!
//! One sessionless request exists: `batch_schedule` cold-schedules many
//! independent designs in a single round trip, fanning them across a
//! scoped thread pool inside the handling worker. The response carries
//! `"results"`, one entry per design **in input order**.
//!
//! Each request honors a deadline (the `ServeConfig` default, overridable
//! per request via `"deadline_ms"`), measured from the moment the line is
//! read; a request still queued when its deadline passes is answered with
//! an error instead of being executed. On end of input the service stops
//! accepting work, drains every queue, joins the workers, and returns a
//! summary — a clean EOF shutdown needs no special request.
//!
//! ## Failure model
//!
//! The service survives faults in its own request handlers; see
//! `DESIGN.md` §11 for the full model. In short:
//!
//! - **Panic isolation.** Every request executes under
//!   [`std::panic::catch_unwind`]. A panic is answered in-band as
//!   `{"id":…,"ok":false,"error":"worker_panic: …"}`, the targeted
//!   session (whose `Session` may be half-mutated) is **quarantined**,
//!   and the worker keeps serving. Quarantined sessions reject
//!   `edit`/`schedule` with an error naming the `recover` op.
//! - **Journaling + replay recovery.** Each session keeps an append-only
//!   [`Journal`] of its design and every *accepted* mutating edit,
//!   optionally mirrored to a write-ahead file under
//!   [`ServeConfig::journal_dir`]. `recover` rebuilds the session by
//!   deterministic replay — bit-identical to the pre-panic state.
//! - **Snapshot compaction.** Every [`ServeConfig::snapshot_every`]
//!   accepted edits the journal folds its history into a snapshot of the
//!   session's current design (see the `journal` module docs), so replay
//!   and recovery cost are bounded by the snapshot interval instead of
//!   the session's lifetime edit count.
//! - **Worker respawn.** A worker thread that dies outright (not just a
//!   caught request panic) is respawned on the same queue; sessions and
//!   queued jobs live in shared state that outlives any one thread, so
//!   nothing is lost or reordered and `serve` still ends only at EOF.
//! - **Admission control.** Worker queues are bounded
//!   ([`ServeConfig::queue_depth`]); when a queue is full the request is
//!   shed in-band with `"error":"overloaded: …"` and a `retry_after_ms`
//!   hint instead of stalling the intake loop. Oversized designs are
//!   rejected at intake when [`ServeConfig::max_ops`] /
//!   [`ServeConfig::max_edges`] are set.
//!
//! WAL mirror writes are **group-committed**: appends only buffer lines,
//! and a worker flushes once per drained request batch
//! ([`Router::sync_journals`]) instead of once per op — measured at ~58%
//! of a serve round when every op paid its own write+flush.
//!
//! Deterministic fault-injection tests drive all of this through the
//! `rsched_graph::failpoint` facility: the sites `serve::handle` (per
//! request), `serve::worker_kill` (per worker loop), and
//! `journal::snapshot` (pre-compaction) plus `session::reschedule` and
//! `kernel::build` deeper down. Workers enter
//! [`ServeConfig::fault_scope`] so a harness can target one service
//! instance without affecting concurrent tests.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use rsched_cache::{schedule_cached, CacheStats, ScheduleCache};
use rsched_core::{KernelCounters, ScheduleError, WellPosedness, WorkPool};
use rsched_graph::{failpoint, ConstraintGraph, ExecDelay};

use crate::journal::{Journal, JournalOp};
use crate::json::{object, Json};
use crate::optimize::{Objective, OptimizeConfig, Optimizer, RoundReport};
use crate::session::{EditOutcome, Session};

/// Tuning knobs for [`serve`] (and, via [`Router`], the socket server).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (sessions are pinned to workers); clamped to ≥ 1.
    pub workers: usize,
    /// Default per-request deadline; `None` means no deadline unless the
    /// request carries `"deadline_ms"`.
    pub deadline: Option<Duration>,
    /// Bounded depth of each worker's job queue; clamped to ≥ 1. A
    /// request arriving at a full queue is shed with an in-band
    /// `"overloaded"` error carrying a `retry_after_ms` hint.
    pub queue_depth: usize,
    /// Reject `open`/`batch_schedule` designs declaring more than this
    /// many operations. `None` = unlimited.
    pub max_ops: Option<usize>,
    /// Reject designs declaring more than this many dependency/timing
    /// constraint lines. `None` = unlimited.
    pub max_edges: Option<usize>,
    /// Mirror every session journal to a write-ahead file
    /// (`<session>-<hash>.wal`) in this directory. Mirror I/O failures
    /// never fail requests; recovery replays the in-memory journal.
    pub journal_dir: Option<PathBuf>,
    /// Compact a session's journal into a snapshot once this many edits
    /// accumulate since the last base; `0` disables compaction.
    pub snapshot_every: usize,
    /// Capacity of the canonical-form schedule cache shared by `open` and
    /// `batch_schedule` across all transports; `0` (the default) disables
    /// caching entirely, keeping every response deterministic.
    pub cache_capacity: usize,
    /// Failpoint scope token the worker threads enter, so a fault-
    /// injection harness can target exactly this service instance.
    pub fault_scope: Option<u64>,
    /// Threads of the router's shared work-stealing pool, through which
    /// `batch_schedule` fans its designs (one pool per [`Router`],
    /// shared by every transport and request). `0` (the default) sizes
    /// the pool to the host's available parallelism; any value counts
    /// the submitting thread, so `1` means a no-worker inline pool.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            deadline: None,
            queue_depth: 1024,
            max_ops: None,
            max_edges: None,
            journal_dir: None,
            snapshot_every: 256,
            cache_capacity: 0,
            fault_scope: None,
            threads: 0,
        }
    }
}

/// What a [`serve`] run processed, returned after EOF shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (including errors).
    pub requests: usize,
    /// Requests answered with `"ok":false`.
    pub errors: usize,
    /// `open` requests that created a session.
    pub sessions_opened: usize,
    /// Request handlers that panicked (answered in-band as
    /// `worker_panic`).
    pub panics: usize,
    /// Sessions quarantined after a panic.
    pub quarantined: usize,
    /// Successful `recover` replays.
    pub recoveries: usize,
    /// Journal compactions (snapshots taken).
    pub snapshots: usize,
    /// Requests shed because a worker queue was full.
    pub shed: usize,
    /// Worker threads respawned after dying outright.
    pub workers_respawned: usize,
}

/// Milliseconds a shed client should wait before retrying.
const RETRY_AFTER_MS: i64 = 25;

/// The in-band error for a request whose deadline passed while it was
/// still queued. Public so every transport answers with the same string.
pub const DEADLINE_ERROR: &str = "deadline exceeded before execution";

/// The in-band error for a frame that is not valid UTF-8 (binary junk,
/// NUL bytes, truncated multi-byte sequences). Public so the stdio loop
/// and the socket server answer hostile bytes identically — the frame
/// is rejected, the connection lives on.
pub const MALFORMED_UTF8_ERROR: &str = "malformed request: frame is not valid UTF-8";

/// Respawn attempts per worker slot at EOF before the dispatcher drains
/// the queue inline (where `serve::worker_kill` is never evaluated).
const MAX_RESPAWNS_AT_EOF: usize = 4;

struct Job {
    id: Json,
    request: Json,
    accepted: Instant,
    deadline: Option<Duration>,
}

/// Every op the protocol understands; anything else is rejected at
/// intake with the request id echoed.
const KNOWN_OPS: [&str; 9] = [
    "open",
    "edit",
    "schedule",
    "stats",
    "recover",
    "close",
    "batch_schedule",
    "optimize",
    "health",
];

/// One session as the service tracks it: the live engine state (absent
/// while quarantined) plus the journal that can rebuild it.
struct SessionEntry {
    /// `None` after a panic mid-request left the `Session` suspect.
    session: Option<Session>,
    journal: Journal,
    recoveries: usize,
}

/// Per-worker-slot session table. Lives outside the worker thread so a
/// dead worker's sessions survive into its replacement.
#[derive(Default)]
struct SlotState {
    sessions: HashMap<String, SessionEntry>,
}

#[derive(Default)]
struct Counters {
    opened: AtomicUsize,
    panics: AtomicUsize,
    quarantined: AtomicUsize,
    recoveries: AtomicUsize,
    snapshots: AtomicUsize,
    boot_recovered: AtomicUsize,
}

impl Counters {
    fn bump(counter: &AtomicUsize) -> usize {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Mutex poisoning only means "a panic happened near this data"; every
/// structure here is left consistent by construction (request panics are
/// caught inside the lock scope and quarantine the session), so recover
/// the guard instead of propagating.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counters the [`Router`] accumulates across all transports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// `open` requests that created a session.
    pub sessions_opened: usize,
    /// Request handlers that panicked (answered in-band).
    pub panics: usize,
    /// Sessions quarantined after a panic.
    pub quarantined: usize,
    /// Successful `recover` replays.
    pub recoveries: usize,
    /// Journal compactions (snapshots taken).
    pub snapshots: usize,
    /// Sessions rebuilt from on-disk WAL files when the router started.
    pub boot_recovered: usize,
    /// Canonical-form schedule cache counters (all zero when the cache is
    /// disabled).
    pub cache: CacheStats,
}

/// The transport-agnostic core of the scheduling service: session tables
/// sharded into slots, request validation, execution under panic
/// isolation, journaling, and snapshot compaction.
///
/// A transport (the stdio loop here, the socket listener in
/// `rsched-net`) owns queueing, deadlines, and load shedding; it calls
/// [`Router::route`] at intake to validate a request and learn its slot,
/// guarantees per-slot execution is serial, calls [`Router::execute`]
/// from the slot's worker, and [`Router::sync_journals`] once per
/// drained batch (group commit).
pub struct Router {
    slots: Vec<Mutex<SlotState>>,
    counters: Counters,
    max_ops: Option<usize>,
    max_edges: Option<usize>,
    journal_dir: Option<PathBuf>,
    snapshot_every: usize,
    cache: Arc<ScheduleCache>,
    pool: WorkPool,
}

impl Router {
    /// Builds a router with `n_slots` independent session tables
    /// (clamped to ≥ 1), taking limits, journal, snapshot, and cache
    /// settings from `config`. Creates the journal directory best-effort —
    /// a missing directory only disables the WAL mirror — then rebuilds
    /// any sessions whose WAL files survive in it from a previous process
    /// (boot-time recovery; see [`RouterStats::boot_recovered`]).
    pub fn new(n_slots: usize, config: &ServeConfig) -> Router {
        if let Some(dir) = &config.journal_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let router = Router {
            slots: (0..n_slots.max(1))
                .map(|_| Mutex::new(SlotState::default()))
                .collect(),
            counters: Counters::default(),
            max_ops: config.max_ops,
            max_edges: config.max_edges,
            journal_dir: config.journal_dir.clone(),
            snapshot_every: config.snapshot_every,
            cache: Arc::new(ScheduleCache::new(config.cache_capacity)),
            pool: WorkPool::new(if config.threads == 0 {
                thread::available_parallelism().map_or(1, |p| p.get())
            } else {
                config.threads
            }),
        };
        router.recover_from_wal_dir();
        router
    }

    /// The canonical-form schedule cache shared by every transport on
    /// this router.
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// Boot-time recovery: scan the journal directory for `*.wal` files
    /// left by a previous process and rebuild each session by replaying
    /// its journal, pinning it to the same slot its name shards to.
    ///
    /// Failure handling is strictly best-effort — this runs before the
    /// service accepts traffic, and a damaged WAL must never prevent
    /// startup. A torn tail (crash mid-append) is truncated to the last
    /// parseable line and the file is rewritten to that good prefix, so
    /// resumed appends extend a clean journal. Files whose base line
    /// predates session-name journaling (or fails replay) are skipped.
    fn recover_from_wal_dir(&self) {
        let Some(dir) = &self.journal_dir else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "wal"))
            .collect();
        paths.sort(); // Deterministic recovery order regardless of readdir.
        for path in paths {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let mut ops = Vec::new();
            let mut good = String::new();
            let mut torn = false;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                let parsed = Json::parse(line)
                    .ok()
                    .and_then(|json| JournalOp::from_json(&json).ok());
                match parsed {
                    Some(op) => {
                        ops.push(op);
                        good.push_str(line);
                        good.push('\n');
                    }
                    None => {
                        torn = true;
                        break; // Keep the good prefix only.
                    }
                }
            }
            if torn {
                // Rewrite atomically so the resumed journal appends after
                // the last good line, not after the torn one.
                let tmp = path.with_extension("wal.tmp");
                if std::fs::write(&tmp, good.as_bytes())
                    .and_then(|()| std::fs::rename(&tmp, &path))
                    .is_err()
                {
                    let _ = std::fs::remove_file(&tmp);
                    continue;
                }
            }
            let Ok(mut journal) = Journal::resume(ops, Some(path)) else {
                continue;
            };
            journal.set_snapshot_every(self.snapshot_every);
            let name = journal.session_name().to_owned();
            if name.is_empty() {
                continue; // Pre-name WAL format: no session to rebuild.
            }
            let Ok(session) = journal.replay() else {
                continue;
            };
            let slot = shard_of(&name, self.slots.len());
            let mut state = lock_recover(&self.slots[slot]);
            state.sessions.entry(name).or_insert(SessionEntry {
                session: Some(session),
                journal,
                recoveries: 0,
            });
            Counters::bump(&self.counters.boot_recovered);
        }
    }

    /// Slots this router shards sessions across.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Validates a request at intake and pins it to a slot. `Err` carries
    /// the ready-to-send error response (unknown/missing op, missing
    /// session, resource-limit violation) with the id echoed. Sessions
    /// pin by [`shard_of`] their name; the sessionless `batch_schedule`
    /// spreads by request id.
    pub fn route(&self, id: &Json, request: &Json) -> Result<usize, Json> {
        let op = match request.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => return Err(fail(id.clone(), "missing \"op\"")),
        };
        if !KNOWN_OPS.contains(&op) {
            return Err(fail(id.clone(), format!("unknown op '{op}'")));
        }
        if let Some(error) = self.resource_violation(request, op) {
            return Err(fail(id.clone(), error));
        }
        if op == "batch_schedule" || op == "health" {
            // Sessionless ops spread by request id.
            Ok(shard_of(&id.render(), self.slots.len()))
        } else {
            let Some(session) = request.get("session").and_then(Json::as_str) else {
                return Err(fail(id.clone(), "missing \"session\""));
            };
            Ok(shard_of(session, self.slots.len()))
        }
    }

    /// Executes one routed request against its slot's session table,
    /// isolating panics: a panicking handler yields an in-band
    /// `worker_panic` error and quarantines the targeted session. The
    /// caller must serialize calls per slot (one worker per slot).
    pub fn execute(&self, slot: usize, id: Json, request: &Json) -> Json {
        let session_name = request
            .get("session")
            .and_then(Json::as_str)
            .map(str::to_owned);
        let mut state = lock_recover(&self.slots[slot]);
        // The catch is *inside* the lock scope: the guard drops normally,
        // so the slot mutex is never poisoned by a request panic.
        match catch_unwind(AssertUnwindSafe(|| {
            self.handle(&mut state, id.clone(), request)
        })) {
            Ok(response) => response,
            Err(payload) => {
                Counters::bump(&self.counters.panics);
                // `&payload` would downcast against the `Box` itself;
                // deref to reach the boxed payload.
                let msg = panic_message(&*payload);
                let quarantined = session_name.as_deref().is_some_and(|name| {
                    let taken = state
                        .sessions
                        .get_mut(name)
                        .is_some_and(|entry| entry.session.take().is_some());
                    if taken {
                        Counters::bump(&self.counters.quarantined);
                    }
                    taken
                });
                let mut pairs = vec![
                    ("id", id),
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(format!("worker_panic: {msg}"))),
                    ("quarantined", Json::Bool(quarantined)),
                ];
                if let Some(name) = session_name.filter(|_| quarantined) {
                    pairs.push(("session", Json::Str(name)));
                    pairs.push(("recover_with", Json::Str("recover".to_owned())));
                }
                object(pairs)
            }
        }
    }

    /// Group commit: flushes every buffered WAL line in the slot with one
    /// write+flush per dirty journal. Called by a slot's worker after
    /// draining a request batch. Free when no journal directory is
    /// configured.
    pub fn sync_journals(&self, slot: usize) {
        if self.journal_dir.is_none() {
            return;
        }
        let mut state = lock_recover(&self.slots[slot]);
        for entry in state.sessions.values_mut() {
            entry.journal.sync();
        }
    }

    /// The `health` op's response: shard count plus the router's
    /// monotonic liveness counters, readable at any time without
    /// touching a session table. Transports may extend the object with
    /// their own block (the socket server adds `"net"`: connection
    /// counts, eviction counters, drain state).
    pub fn health_json(&self, id: Json) -> Json {
        let s = self.stats();
        object([
            ("id", id),
            ("ok", Json::Bool(true)),
            (
                "health",
                object([
                    ("shards", Json::from(self.n_slots())),
                    ("sessions_opened", Json::from(s.sessions_opened)),
                    ("panics", Json::from(s.panics)),
                    ("quarantined", Json::from(s.quarantined)),
                    ("recoveries", Json::from(s.recoveries)),
                    ("snapshots", Json::from(s.snapshots)),
                    ("boot_recovered", Json::from(s.boot_recovered)),
                ]),
            ),
        ])
    }

    /// A snapshot of the router's monotonic counters.
    pub fn stats(&self) -> RouterStats {
        let c = &self.counters;
        RouterStats {
            sessions_opened: c.opened.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            recoveries: c.recoveries.load(Ordering::Relaxed),
            snapshots: c.snapshots.load(Ordering::Relaxed),
            boot_recovered: c.boot_recovered.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Checks `open`/`batch_schedule` designs against the configured size
    /// limits, counting declared `op` and constraint lines without a full
    /// parse. Returns the exact in-band error for the first violation.
    fn resource_violation(&self, request: &Json, op: &str) -> Option<String> {
        if self.max_ops.is_none() && self.max_edges.is_none() {
            return None;
        }
        let check = |design: &str, label: &str| -> Option<String> {
            let (mut ops, mut edges) = (0usize, 0usize);
            for line in design.lines() {
                let line = line.trim_start();
                if line.starts_with("op ") {
                    ops += 1;
                } else if line.starts_with("dep ")
                    || line.starts_with("min ")
                    || line.starts_with("max ")
                {
                    edges += 1;
                }
            }
            if let Some(m) = self.max_ops {
                if ops > m {
                    return Some(format!(
                        "resource limit exceeded: design{label} has {ops} operations, limit {m}"
                    ));
                }
            }
            if let Some(m) = self.max_edges {
                if edges > m {
                    return Some(format!(
                        "resource limit exceeded: design{label} has {edges} constraint edges, limit {m}"
                    ));
                }
            }
            None
        };
        match op {
            "open" => check(request.get("design").and_then(Json::as_str)?, ""),
            "batch_schedule" => {
                for entry in request.get("designs").and_then(Json::as_array)? {
                    let Some(design) = entry.get("design").and_then(Json::as_str) else {
                        continue;
                    };
                    let name = entry.get("name").and_then(Json::as_str).unwrap_or("");
                    if let Some(err) = check(design, &format!(" '{name}'")) {
                        return Some(err);
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn handle(&self, state: &mut SlotState, id: Json, request: &Json) -> Json {
        // Per-request fault site: an Error action is surfaced in-band, a
        // Panic action exercises the quarantine path, a Delay action
        // stalls the worker (for overload tests). One relaxed load when
        // disarmed.
        if let Some(msg) = rsched_graph::failpoint!("serve::handle") {
            return fail(id, format!("injected fault: {msg}"));
        }
        let op = match request.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => return fail(id, "missing \"op\""),
        };
        if op == "batch_schedule" {
            return batch_schedule(&self.cache, &self.pool, id, request);
        }
        if op == "health" {
            return self.health_json(id);
        }
        let name = request
            .get("session")
            .and_then(Json::as_str)
            .expect("router verified")
            .to_owned();
        match op {
            "open" => {
                let Some(design) = request.get("design").and_then(Json::as_str) else {
                    return fail(id, "open needs a \"design\" (graph text format)");
                };
                let mut graph = match ConstraintGraph::from_text(design) {
                    Ok(g) => g,
                    Err(e) => return fail(id, format!("bad design: {e}")),
                };
                // Cache keys are canonical forms of *polar* graphs (the
                // space sessions live in), so polarize before probing.
                // Session::open would do the same polarization anyway.
                if self.cache.enabled() && !graph.is_polar() {
                    if let Err(e) = graph.polarize() {
                        return fail(id, format!("cannot open session: {e}"));
                    }
                }
                let seed = self.cache.get(&graph);
                let seeded = seed.is_some();
                let session = match Session::open_with_seed(graph, seed) {
                    Ok(s) => s,
                    Err(e) => return fail(id, format!("cannot open session: {e}")),
                };
                if !seeded && session.posedness().is_well_posed() {
                    if let Some(omega) = session.schedule() {
                        self.cache.put(session.graph(), omega);
                    }
                }
                Counters::bump(&self.counters.opened);
                let wal = self
                    .journal_dir
                    .as_ref()
                    .map(|dir| dir.join(wal_file_name(&name)));
                let mut journal = Journal::open(name.clone(), design.to_owned(), wal);
                journal.set_snapshot_every(self.snapshot_every);
                let body = [
                    ("vertices", Json::from(session.graph().n_vertices())),
                    ("edges", Json::from(session.graph().n_edges())),
                    ("anchors", Json::from(session.graph().n_anchors())),
                    ("verdict", verdict_json(&session)),
                ];
                let replaced = state
                    .sessions
                    .insert(
                        name,
                        SessionEntry {
                            session: Some(session),
                            journal,
                            recoveries: 0,
                        },
                    )
                    .is_some();
                let mut pairs = vec![("id", id), ("ok", Json::Bool(true))];
                pairs.extend(body);
                pairs.push(("replaced", Json::Bool(replaced)));
                object(pairs)
            }
            "edit" => with_live(state, &name, id, |id, entry| self.edit(entry, id, request)),
            "optimize" => with_live(state, &name, id, |id, entry| {
                self.optimize(entry, id, request)
            }),
            "schedule" => with_live(state, &name, id, |id, entry| {
                let s = entry.session.as_ref().expect("with_live verified");
                let mut pairs = vec![
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("verdict", verdict_json(s)),
                ];
                if let Some(omega) = s.schedule() {
                    let anchors = Json::Array(
                        omega
                            .anchors()
                            .iter()
                            .map(|&a| Json::from(s.graph().vertex(a).name()))
                            .collect(),
                    );
                    let offsets = Json::Object(
                        s.graph()
                            .vertex_ids()
                            .map(|v| {
                                let row = Json::Object(
                                    omega
                                        .offsets_of(v)
                                        .map(|(a, o)| {
                                            (s.graph().vertex(a).name().to_owned(), Json::Int(o))
                                        })
                                        .collect(),
                                );
                                (s.graph().vertex(v).name().to_owned(), row)
                            })
                            .collect(),
                    );
                    pairs.push(("anchors", anchors));
                    pairs.push(("offsets", offsets));
                    pairs.push(("stale", Json::Bool(!s.posedness().is_well_posed())));
                }
                object(pairs)
            }),
            "stats" => {
                // Unlike edit/schedule, stats answers for quarantined
                // sessions too — operators need to see the journal state
                // to decide whether to recover or close.
                let Some(entry) = state.sessions.get(&name) else {
                    return fail(id, format!("unknown session '{name}'"));
                };
                let mut pairs = vec![("id", id), ("ok", Json::Bool(true))];
                if let Some(s) = &entry.session {
                    let st = s.stats();
                    pairs.extend([
                        ("edits", Json::from(st.edits)),
                        ("rejected", Json::from(st.rejected)),
                        ("noops", Json::from(st.noops)),
                        ("reschedules", Json::from(st.reschedules)),
                        ("warm_anchor_columns", Json::from(st.warm_anchor_columns)),
                        ("cold_anchor_columns", Json::from(st.cold_anchor_columns)),
                        ("iterations", Json::from(st.iterations)),
                        ("ill_posed", Json::from(st.ill_posed)),
                        ("unfeasible", Json::from(st.unfeasible)),
                        ("containment_checks", Json::from(st.containment_checks)),
                        ("vertices", Json::from(s.graph().n_vertices())),
                        ("edges", Json::from(s.graph().n_edges())),
                    ]);
                }
                pairs.extend([
                    ("quarantined", Json::Bool(entry.session.is_none())),
                    ("journal_len", Json::from(entry.journal.edits())),
                    ("total_edits", Json::from(entry.journal.total_edits())),
                    ("compactions", Json::from(entry.journal.compactions())),
                    ("recoveries", Json::from(entry.recoveries)),
                    ("cache", cache_json(&self.cache.stats())),
                    ("kernel", kernel_json(&rsched_core::kernel_counters())),
                ]);
                object(pairs)
            }
            "recover" => {
                let Some(entry) = state.sessions.get_mut(&name) else {
                    return fail(id, format!("unknown session '{name}'"));
                };
                let was_quarantined = entry.session.is_none();
                match entry.journal.replay() {
                    Ok(session) => {
                        entry.session = Some(session);
                        entry.recoveries += 1;
                        Counters::bump(&self.counters.recoveries);
                        object([
                            ("id", id),
                            ("ok", Json::Bool(true)),
                            ("recovered", Json::Bool(true)),
                            ("was_quarantined", Json::Bool(was_quarantined)),
                            ("edits_replayed", Json::from(entry.journal.edits())),
                            ("snapshot", Json::Bool(entry.journal.snapshotted())),
                            (
                                "verdict",
                                verdict_json(entry.session.as_ref().expect("just set")),
                            ),
                        ])
                    }
                    Err(e) => fail(id, format!("recover failed: {e}")),
                }
            }
            "close" => {
                if state.sessions.remove(&name).is_some() {
                    // Dropping the entry's journal syncs its WAL tail.
                    object([
                        ("id", id),
                        ("ok", Json::Bool(true)),
                        ("closed", Json::from(true)),
                    ])
                } else {
                    fail(id, format!("unknown session '{name}'"))
                }
            }
            other => fail(id, format!("unknown op '{other}'")),
        }
    }

    fn edit(&self, entry: &mut SessionEntry, id: Json, request: &Json) -> Json {
        let Some(kind) = request.get("kind").and_then(Json::as_str) else {
            return fail(id, "edit needs a \"kind\"");
        };
        let name_of = |key: &str| -> Result<String, String> {
            request
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("edit kind '{kind}' needs \"{key}\""))
        };
        let value = || -> Result<u64, String> {
            request
                .get("value")
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("edit kind '{kind}' needs a non-negative \"value\""))
        };
        let resolve = |session: &Session, name: &str| -> Result<rsched_graph::VertexId, String> {
            session
                .vertex_named(name)
                .ok_or_else(|| format!("no operation named '{name}'"))
        };
        let session = entry
            .session
            .as_mut()
            .expect("caller verified live session");
        // Each arm yields the engine outcome plus the name-keyed journal
        // op that reproduces the edit on replay.
        let (outcome, journal_op) = match kind {
            "add_dep" => {
                let (from, to) = match (name_of("from"), name_of("to")) {
                    (Ok(f), Ok(t)) => (f, t),
                    (Err(e), _) | (_, Err(e)) => return fail(id, e),
                };
                let (f, t) = match (resolve(session, &from), resolve(session, &to)) {
                    (Ok(f), Ok(t)) => (f, t),
                    (Err(e), _) | (_, Err(e)) => return fail(id, e),
                };
                (session.add_dependency(f, t), JournalOp::AddDep { from, to })
            }
            "add_min" => {
                let (from, to, v) = match (name_of("from"), name_of("to"), value()) {
                    (Ok(f), Ok(t), Ok(v)) => (f, t, v),
                    (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(id, e),
                };
                let (f, t) = match (resolve(session, &from), resolve(session, &to)) {
                    (Ok(f), Ok(t)) => (f, t),
                    (Err(e), _) | (_, Err(e)) => return fail(id, e),
                };
                (
                    session.add_min_constraint(f, t, v),
                    JournalOp::AddMin { from, to, value: v },
                )
            }
            "add_max" => {
                let (from, to, v) = match (name_of("from"), name_of("to"), value()) {
                    (Ok(f), Ok(t), Ok(v)) => (f, t, v),
                    (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(id, e),
                };
                let (f, t) = match (resolve(session, &from), resolve(session, &to)) {
                    (Ok(f), Ok(t)) => (f, t),
                    (Err(e), _) | (_, Err(e)) => return fail(id, e),
                };
                (
                    session.add_max_constraint(f, t, v),
                    JournalOp::AddMax { from, to, value: v },
                )
            }
            "remove_edge" => {
                let (from, to) = match (name_of("from"), name_of("to")) {
                    (Ok(f), Ok(t)) => (f, t),
                    (Err(e), _) | (_, Err(e)) => return fail(id, e),
                };
                let (f, t) = match (resolve(session, &from), resolve(session, &to)) {
                    (Ok(f), Ok(t)) => (f, t),
                    (Err(e), _) | (_, Err(e)) => return fail(id, e),
                };
                match session.edge_between(f, t) {
                    Some(e) => (session.remove_edge(e), JournalOp::RemoveEdge { from, to }),
                    None => return fail(id, "no live edge between those operations"),
                }
            }
            "set_delay" => {
                let vertex_name = match name_of("vertex") {
                    Ok(v) => v,
                    Err(e) => return fail(id, e),
                };
                let v = match resolve(session, &vertex_name) {
                    Ok(v) => v,
                    Err(e) => return fail(id, e),
                };
                let delay = match request.get("delay") {
                    Some(Json::Str(s)) if s == "unbounded" => ExecDelay::Unbounded,
                    Some(d) => match d.as_i64().and_then(|v| u64::try_from(v).ok()) {
                        Some(cycles) => ExecDelay::Fixed(cycles),
                        None => {
                            return fail(id, "\"delay\" must be a cycle count or \"unbounded\"")
                        }
                    },
                    None => return fail(id, "edit kind 'set_delay' needs \"delay\""),
                };
                (
                    session.set_delay(v, delay),
                    JournalOp::SetDelay {
                        vertex: vertex_name,
                        delay,
                    },
                )
            }
            other => return fail(id, format!("unknown edit kind '{other}'")),
        };
        // Only accepted mutations are journaled: Rejected edits changed
        // nothing and Unchanged edits replay to Unchanged anyway —
        // skipping both keeps replay exact and the journal minimal.
        if !matches!(
            outcome,
            EditOutcome::Rejected { .. } | EditOutcome::Unchanged
        ) {
            entry.journal.append(journal_op);
            // Compaction point: the session just reached a post-edit
            // state; if the delta is long enough and the state is
            // snapshot-safe, fold it. An injected `journal::snapshot`
            // panic unwinds to `execute`'s catch with the journal intact.
            let session = entry.session.as_ref().expect("still live");
            if entry.journal.maybe_compact(session) {
                Counters::bump(&self.counters.snapshots);
            }
            // Write-through: the post-edit graph now has a verified
            // schedule, so a later `open` of an isomorphic design hits.
            if let (EditOutcome::Rescheduled { .. }, Some(omega)) = (&outcome, session.schedule()) {
                self.cache.put(session.graph(), omega);
            }
        }
        outcome_json(entry.session.as_ref().expect("still live"), id, &outcome)
    }

    /// Runs the feedback-guided optimize loop on a live session
    /// (DESIGN.md §15). The loop executes on a *clone*: a panic mid-round
    /// unwinds to [`Router::execute`], which quarantines the untouched
    /// original — nothing half-optimized ever becomes visible. On
    /// success, accepted rounds' serialization edges are journaled as
    /// ordinary `add_dep` edits (reverted rounds net out and are not
    /// journaled), so recovery replays the whole exploration; the
    /// router's `--max-edges` quota caps the growth.
    fn optimize(&self, entry: &mut SessionEntry, id: Json, request: &Json) -> Json {
        let param = |key: &str, default: i64, lo: i64, hi: i64| -> Result<i64, String> {
            match request.get(key) {
                None => Ok(default),
                Some(v) => match v.as_i64() {
                    Some(n) if (lo..=hi).contains(&n) => Ok(n),
                    Some(n) => Err(format!("\"{key}\" must be in {lo}..={hi}, got {n}")),
                    None => Err(format!("\"{key}\" must be a number")),
                },
            }
        };
        let (max_rounds, slack_threshold, budget) = match (
            param("max_rounds", 8, 1, 64),
            param("slack_threshold", 0, 0, 4096),
            param("budget", 1, 1, 4096),
        ) {
            (Ok(r), Ok(s), Ok(b)) => (r as usize, s, b as usize),
            (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(id, e),
        };
        let style = match request.get("style").and_then(Json::as_str) {
            None | Some("counter") => rsched_ctrl::ControlStyle::Counter,
            Some("shift") => rsched_ctrl::ControlStyle::ShiftRegister,
            Some(other) => {
                return fail(id, format!("unknown style '{other}' (counter|shift)"));
            }
        };
        let config = OptimizeConfig {
            max_rounds,
            slack_threshold,
            budget,
            style,
            max_edges: self.max_edges,
            ..OptimizeConfig::default()
        };
        let session = entry
            .session
            .as_ref()
            .expect("caller verified live session");
        let mut optimizer = match Optimizer::new(session.clone(), config) {
            Ok(o) => o,
            Err(e) => return fail(id, format!("optimize failed: {e}")),
        };
        if let Err(e) = optimizer.run() {
            return fail(id, format!("optimize failed: {e}"));
        }
        let report = optimizer.report();
        let optimized = optimizer.into_session();

        let mut edges_added = 0usize;
        for round in report.rounds.iter().filter(|r| r.accepted) {
            for (from, to) in &round.applied_edges {
                entry.journal.append(JournalOp::AddDep {
                    from: from.clone(),
                    to: to.clone(),
                });
                edges_added += 1;
            }
        }
        entry.session = Some(optimized);
        let session = entry.session.as_ref().expect("just set");
        if edges_added > 0 {
            if entry.journal.maybe_compact(session) {
                Counters::bump(&self.counters.snapshots);
            }
            if let Some(omega) = session.schedule() {
                self.cache.put(session.graph(), omega);
            }
        }

        let objective_json = |o: &Objective| {
            Json::Object(vec![
                ("latency".to_owned(), Json::Int(o.latency as i64)),
                ("control".to_owned(), Json::Int(o.control as i64)),
                ("pressure".to_owned(), Json::Int(o.pressure as i64)),
            ])
        };
        let round_json = |r: &RoundReport| {
            Json::Object(vec![
                ("round".to_owned(), Json::from(r.round)),
                ("region_ops".to_owned(), Json::from(r.region_ops)),
                ("proposed_edges".to_owned(), Json::from(r.proposed_edges)),
                ("accepted".to_owned(), Json::Bool(r.accepted)),
                (
                    "edges".to_owned(),
                    Json::Array(
                        r.applied_edges
                            .iter()
                            .map(|(f, t)| Json::Str(format!("{f}->{t}")))
                            .collect(),
                    ),
                ),
                ("objective".to_owned(), objective_json(&r.after)),
            ])
        };
        object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("rounds", Json::from(report.rounds.len())),
            ("accepted_rounds", Json::from(report.accepted_rounds)),
            ("converged", Json::Bool(report.converged)),
            (
                "edge_budget_exhausted",
                Json::Bool(report.edge_budget_exhausted),
            ),
            ("edges_added", Json::from(edges_added)),
            ("initial", objective_json(&report.initial)),
            ("final", objective_json(&report.final_objective)),
            (
                "pareto",
                Json::Array(
                    report
                        .pareto_points()
                        .iter()
                        .map(|&(l, c)| Json::Array(vec![Json::Int(l as i64), Json::Int(c as i64)]))
                        .collect(),
                ),
            ),
            (
                "round_log",
                Json::Array(report.rounds.iter().map(round_json).collect()),
            ),
            ("verdict", verdict_json(session)),
        ])
    }
}

/// Everything a stdio worker needs that must outlive any one worker
/// thread.
struct Shared<W: Write> {
    out: Mutex<CountingWriter<W>>,
    router: Router,
    /// Receivers live here — not in the worker — so queued jobs survive a
    /// worker death and drain through its replacement.
    receivers: Vec<Mutex<Receiver<Job>>>,
    fault_scope: Option<u64>,
    shed: AtomicUsize,
}

/// Runs the service until `input` reaches EOF, writing responses to
/// `output`.
///
/// # Errors
///
/// Only I/O errors on the transport are fatal; malformed requests,
/// handler panics, shed load, and resource-limit rejections are all
/// answered in-band with `"ok":false`.
pub fn serve<R, W>(input: R, output: W, config: &ServeConfig) -> io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    let n_workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);

    let mut senders: Vec<SyncSender<Job>> = Vec::with_capacity(n_workers);
    let mut receivers: Vec<Mutex<Receiver<Job>>> = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let (tx, rx) = mpsc::sync_channel(queue_depth);
        senders.push(tx);
        receivers.push(Mutex::new(rx));
    }
    let shared = Shared {
        out: Mutex::new(CountingWriter {
            inner: output,
            responses: 0,
            errors: 0,
        }),
        router: Router::new(n_workers, config),
        receivers,
        fault_scope: config.fault_scope,
        shed: AtomicUsize::new(0),
    };
    let shared = &shared;
    let respawned = AtomicUsize::new(0);

    thread::scope(|scope| -> io::Result<()> {
        let mut handles: Vec<Option<thread::ScopedJoinHandle<'_, ()>>> = (0..n_workers)
            .map(|slot| Some(scope.spawn(move || worker(slot, shared))))
            .collect();

        // Byte-level framing rather than `lines()`: a frame of binary
        // junk (invalid UTF-8) is a hostile *request*, not a transport
        // failure — it is answered in-band and the stream continues,
        // matching the socket server. `\r\n` line ends stay accepted.
        let mut input = input;
        let mut raw = Vec::new();
        loop {
            raw.clear();
            if input.read_until(b'\n', &mut raw)? == 0 {
                break; // EOF.
            }
            if raw.last() == Some(&b'\n') {
                raw.pop();
            }
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
            let Ok(line) = std::str::from_utf8(&raw) else {
                respond(&shared.out, fail(Json::Null, MALFORMED_UTF8_ERROR))?;
                continue;
            };
            if line.trim().is_empty() {
                continue;
            }
            let request = match Json::parse(line) {
                Ok(v) => v,
                Err(e) => {
                    respond(
                        &shared.out,
                        fail(Json::Null, format!("malformed request: {e}")),
                    )?;
                    continue;
                }
            };
            let id = request.get("id").cloned().unwrap_or(Json::Null);
            // Validation happens at intake so a frame with a missing or
            // unknown op is answered with its id echoed even when it also
            // lacks a "session" (which only known session ops require).
            let slot = match shared.router.route(&id, &request) {
                Ok(slot) => slot,
                Err(response) => {
                    respond(&shared.out, response)?;
                    continue;
                }
            };
            let deadline = request
                .get("deadline_ms")
                .and_then(Json::as_i64)
                .map(|ms| Duration::from_millis(ms.max(0) as u64))
                .or(config.deadline);
            let job = Job {
                id,
                request,
                accepted: Instant::now(),
                deadline,
            };
            // A dead worker (it can only die by panicking outside the
            // per-request catch, i.e. an injected kill) is replaced before
            // the job is queued; its sessions and queue are shared state,
            // so the replacement continues exactly where it stopped.
            if handles[slot].as_ref().is_some_and(|h| h.is_finished()) {
                let died = handles[slot].take().expect("checked above").join().is_err();
                if died {
                    respawned.fetch_add(1, Ordering::Relaxed);
                }
                handles[slot] = Some(scope.spawn(move || worker(slot, shared)));
            }
            match senders[slot].try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    respond(&shared.out, overloaded_response(job.id))?;
                }
                // The receiver lives in `shared` for the whole scope, so
                // disconnection is impossible; answer in-band anyway
                // rather than aborting the service on a logic error.
                Err(TrySendError::Disconnected(job)) => {
                    respond(&shared.out, fail(job.id, "worker queue disconnected"))?;
                }
            }
        }
        drop(senders); // EOF: close every queue so workers drain and exit.

        // Join every worker; respawn the ones that died with jobs still
        // queued, falling back to an inline drain (which never evaluates
        // the kill failpoint) if a slot keeps dying.
        for (slot, entry) in handles.iter_mut().enumerate() {
            let mut handle = entry.take();
            let mut attempts = 0;
            while let Some(h) = handle.take() {
                if h.join().is_ok() {
                    break;
                }
                respawned.fetch_add(1, Ordering::Relaxed);
                attempts += 1;
                if attempts > MAX_RESPAWNS_AT_EOF {
                    drain_inline(slot, shared);
                    break;
                }
                handle = Some(scope.spawn(move || worker(slot, shared)));
            }
        }
        Ok(())
    })?;

    let writer = shared.out.lock().unwrap_or_else(PoisonError::into_inner);
    let router_stats = shared.router.stats();
    Ok(ServeSummary {
        requests: writer.responses,
        errors: writer.errors,
        sessions_opened: router_stats.sessions_opened,
        panics: router_stats.panics,
        quarantined: router_stats.quarantined,
        recoveries: router_stats.recoveries,
        snapshots: router_stats.snapshots,
        shed: shared.shed.load(Ordering::Relaxed),
        workers_respawned: respawned.load(Ordering::Relaxed),
    })
}

/// FNV-1a pin of a session name (or other key) to one of `n_shards`
/// slots. Public so every transport shards identically: a session served
/// over the socket listener lands on the same kind of slot as over
/// stdio, and a client can predict co-location.
pub fn shard_of(key: &str, n_shards: usize) -> usize {
    (fnv1a(key) % n_shards.max(1) as u64) as usize
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// WAL file name for a session: a sanitized prefix for humans plus the
/// FNV hash of the exact name so distinct sessions never collide.
fn wal_file_name(session: &str) -> String {
    let safe: String = session
        .chars()
        .take(40)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:016x}.wal", fnv1a(session))
}

struct CountingWriter<W: Write> {
    inner: W,
    responses: usize,
    errors: usize,
}

fn respond<W: Write>(out: &Mutex<CountingWriter<W>>, response: Json) -> io::Result<()> {
    let mut guard = lock_recover(out);
    guard.responses += 1;
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        guard.errors += 1;
    }
    let line = response.render();
    guard.inner.write_all(line.as_bytes())?;
    guard.inner.write_all(b"\n")?;
    guard.inner.flush()
}

/// Renders the schedule-cache counters for the `stats` op. With the cache
/// disabled (the default) every field is a deterministic zero, so the
/// object is safe to include in differential-tested responses.
fn cache_json(stats: &CacheStats) -> Json {
    let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
    object([
        ("hits", int(stats.hits)),
        ("misses", int(stats.misses)),
        ("evictions", int(stats.evictions)),
        ("inserts", int(stats.inserts)),
        ("entries", int(stats.entries)),
        ("mean_hit_nanos", int(stats.mean_hit_nanos())),
    ])
}

/// The `"kernel"` block of the `stats` op: process-wide fixpoint
/// counters (runs, frontier retirements, steals — see
/// [`KernelCounters`]), monotonic across every session and transport.
fn kernel_json(counters: &KernelCounters) -> Json {
    let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
    object([
        ("runs", int(counters.runs)),
        ("parallel_runs", int(counters.parallel_runs)),
        ("serial_fallbacks", int(counters.serial_fallbacks)),
        ("rounds", int(counters.rounds)),
        ("columns_retired", int(counters.columns_retired)),
        ("steals", int(counters.steals)),
    ])
}

/// The standard `{"id":…,"ok":false,"error":…}` response. Public so
/// every transport shapes errors identically.
pub fn error_response(id: Json, message: impl Into<String>) -> Json {
    object([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// Internal shorthand for [`error_response`].
fn fail(id: Json, message: impl Into<String>) -> Json {
    error_response(id, message)
}

/// The in-band load-shedding response: still `{"id":…,"ok":false,…}` so
/// generic clients treat it as an error, plus a retry hint. Public so
/// every transport sheds identically.
pub fn overloaded_response(id: Json) -> Json {
    object([
        ("id", id),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str("overloaded: worker queue full, retry later".to_owned()),
        ),
        ("retry_after_ms", Json::Int(RETRY_AFTER_MS)),
    ])
}

fn worker<W: Write + Send>(slot: usize, shared: &Shared<W>) {
    let _scope = shared.fault_scope.map(failpoint::enter_scope);
    loop {
        // Kill site, evaluated with no job in hand and no lock held: an
        // injected panic here takes the thread down but loses nothing —
        // queued jobs and sessions live in `shared` and the dispatcher
        // respawns a replacement on the same queue.
        let _ = rsched_graph::failpoint!("serve::worker_kill");
        let job = {
            let rx = lock_recover(&shared.receivers[slot]);
            rx.recv()
        };
        let Ok(job) = job else {
            shared.router.sync_journals(slot);
            return;
        };
        if process(slot, shared, job).is_err() {
            return; // Output gone; nothing sensible left to do.
        }
        // Batch drain: answer everything already queued, then group-
        // commit the batch's WAL lines with a single sync per journal.
        loop {
            let _ = rsched_graph::failpoint!("serve::worker_kill");
            let job = {
                let rx = lock_recover(&shared.receivers[slot]);
                rx.try_recv()
            };
            let Ok(job) = job else { break };
            if process(slot, shared, job).is_err() {
                return;
            }
        }
        shared.router.sync_journals(slot);
    }
}

/// Executes one job against the router, honoring its deadline.
fn process<W: Write + Send>(slot: usize, shared: &Shared<W>, job: Job) -> io::Result<()> {
    let expired = job.deadline.is_some_and(|d| job.accepted.elapsed() > d);
    let response = if expired {
        fail(job.id, DEADLINE_ERROR)
    } else {
        shared.router.execute(slot, job.id, &job.request)
    };
    respond(&shared.out, response)
}

/// EOF backstop when a slot's worker keeps dying: the dispatcher thread
/// answers the remaining queue itself. It never evaluates
/// `serve::worker_kill` (that site lives in the worker loop) and request
/// panics are still caught per job, so this drain always terminates.
fn drain_inline<W: Write + Send>(slot: usize, shared: &Shared<W>) {
    loop {
        let job = {
            let rx = lock_recover(&shared.receivers[slot]);
            rx.try_recv()
        };
        let Ok(job) = job else {
            shared.router.sync_journals(slot);
            return;
        };
        if process(slot, shared, job).is_err() {
            return;
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Schedules each design in `"designs"` independently — no session state
/// is created — fanning the batch across the router's shared
/// [`WorkPool`] (the request's legacy `"threads"` field is accepted but
/// no longer spawns anything: pool size is a deployment decision, set
/// once via [`ServeConfig::threads`]). Each design consults the
/// canonical-form cache and otherwise runs the cold single-thread
/// scheduler; either way results are bit-identical to individual `open`
/// requests, and the response lists them in input order regardless of
/// completion order.
fn batch_schedule(cache: &Arc<ScheduleCache>, pool: &WorkPool, id: Json, request: &Json) -> Json {
    let Some(designs) = request.get("designs").and_then(Json::as_array) else {
        return fail(id, "batch_schedule needs a \"designs\" array");
    };
    // Pool workers are long-lived OS threads without the request
    // handler's ambient failpoint scope: propagate it per job so injected
    // faults reach the fan-out work too.
    let fault_scope = failpoint::current_scope();
    let (res_tx, res_rx) = mpsc::channel::<(usize, Json)>();
    let jobs = designs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, entry)| {
            let cache = Arc::clone(cache);
            let res_tx = res_tx.clone();
            Box::new(move || {
                let _scope = fault_scope.map(failpoint::enter_scope);
                let _ = res_tx.send((i, batch_entry(&cache, &entry)));
            }) as Box<dyn FnOnce() + Send + 'static>
        })
        .collect();
    drop(res_tx);
    pool.run(jobs);
    let mut results = vec![Json::Null; designs.len()];
    let mut filled = vec![false; designs.len()];
    for (i, result) in res_rx {
        results[i] = result;
        filled[i] = true;
    }
    if let Some(i) = filled.iter().position(|f| !f) {
        // The pool caught a panic before the job could report. Re-raise
        // so the request-level quarantine answers in-band, exactly as
        // the scoped-thread fan-out used to.
        panic!("batch_schedule design {i} panicked before reporting");
    }
    object([
        ("id", id),
        ("ok", Json::Bool(true)),
        ("results", Json::Array(results)),
    ])
}

/// Parses, polarizes, and schedules one `{"name", "design"}` entry
/// through the canonical-form cache (a cache hit is bit-identical to the
/// cold run, so the response shape never reveals which path served it).
fn batch_entry(cache: &ScheduleCache, entry: &Json) -> Json {
    let name = Json::from(entry.get("name").and_then(Json::as_str).unwrap_or(""));
    let bad = |name: Json, error: String| {
        object([
            ("name", name),
            ("ok", Json::Bool(false)),
            ("error", Json::Str(error)),
        ])
    };
    let Some(design) = entry.get("design").and_then(Json::as_str) else {
        return bad(name, "missing \"design\"".to_owned());
    };
    let mut graph = match ConstraintGraph::from_text(design) {
        Ok(g) => g,
        Err(e) => return bad(name, format!("bad design: {e}")),
    };
    if !graph.is_polar() {
        if let Err(e) = graph.polarize() {
            return bad(name, format!("bad design: {e}"));
        }
    }
    match schedule_cached(cache, &graph, 1) {
        Ok((omega, _)) => object([
            ("name", name),
            ("ok", Json::Bool(true)),
            ("verdict", Json::from("well-posed")),
            ("iterations", Json::from(omega.iterations())),
            (
                "anchors",
                Json::Array(
                    omega
                        .anchors()
                        .iter()
                        .map(|&a| Json::from(graph.vertex(a).name()))
                        .collect(),
                ),
            ),
            ("vertices", Json::from(graph.n_vertices())),
            ("edges", Json::from(graph.n_edges())),
        ]),
        Err(ScheduleError::Unfeasible { witness }) => object([
            ("name", name),
            ("ok", Json::Bool(true)),
            (
                "verdict",
                object([
                    ("kind", Json::from("unfeasible")),
                    ("witness", Json::from(graph.vertex(witness).name())),
                ]),
            ),
        ]),
        Err(ScheduleError::IllPosed { from, to, missing }) => object([
            ("name", name),
            ("ok", Json::Bool(true)),
            (
                "verdict",
                object([
                    ("kind", Json::from("ill-posed")),
                    ("from", Json::from(graph.vertex(from).name())),
                    ("to", Json::from(graph.vertex(to).name())),
                    (
                        "missing",
                        Json::Array(
                            missing
                                .iter()
                                .map(|&a| Json::from(graph.vertex(a).name()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]),
        Err(e) => bad(name, format!("cannot schedule: {e}")),
    }
}

/// Runs `f` on the named entry if it exists *and* its session is live;
/// quarantined sessions answer with an error naming the `recover` op.
fn with_live(
    state: &mut SlotState,
    name: &str,
    id: Json,
    f: impl FnOnce(Json, &mut SessionEntry) -> Json,
) -> Json {
    match state.sessions.get_mut(name) {
        None => fail(id, format!("unknown session '{name}'")),
        Some(entry) if entry.session.is_none() => fail(
            id,
            format!(
                "session '{name}' is quarantined after a panic; \
                 send {{\"op\":\"recover\"}} to restore it or close it"
            ),
        ),
        Some(entry) => f(id, entry),
    }
}

fn outcome_json(session: &Session, id: Json, outcome: &EditOutcome) -> Json {
    match outcome {
        EditOutcome::Unchanged => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("unchanged")),
        ]),
        EditOutcome::Rescheduled {
            iterations,
            warm_anchors,
            total_anchors,
        } => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("rescheduled")),
            ("iterations", Json::from(*iterations)),
            ("warm_anchors", Json::from(*warm_anchors)),
            ("total_anchors", Json::from(*total_anchors)),
        ]),
        EditOutcome::IllPosed { violations } => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("ill-posed")),
            (
                "violations",
                Json::Array(
                    violations
                        .iter()
                        .map(|v| {
                            object([
                                ("from", Json::from(session.graph().vertex(v.from).name())),
                                ("to", Json::from(session.graph().vertex(v.to).name())),
                                (
                                    "missing",
                                    Json::Array(
                                        v.missing
                                            .iter()
                                            .map(|&a| Json::from(session.graph().vertex(a).name()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        EditOutcome::Unfeasible { witness } => object([
            ("id", id),
            ("ok", Json::Bool(true)),
            ("outcome", Json::from("unfeasible")),
            (
                "witness",
                Json::from(session.graph().vertex(*witness).name()),
            ),
        ]),
        EditOutcome::Rejected { error } => fail(id, format!("edit rejected: {error}")),
    }
}

fn verdict_json(session: &Session) -> Json {
    match session.posedness() {
        WellPosedness::WellPosed => Json::from("well-posed"),
        WellPosedness::IllPosed { violations } => object([
            ("kind", Json::from("ill-posed")),
            ("violations", Json::from(violations.len())),
        ]),
        WellPosedness::Unfeasible { witness } => object([
            ("kind", Json::from("unfeasible")),
            (
                "witness",
                Json::from(session.graph().vertex(*witness).name()),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_graph::failpoint::FailAction;

    const DESIGN: &str =
        "op sync unbounded\nop alu 2\nop out 1\ndep sync alu\ndep alu out\nmax alu out 4\n";

    fn run_lines(lines: &[String], config: &ServeConfig) -> (Vec<Json>, ServeSummary) {
        let input = lines.join("\n");
        let mut output = Vec::new();
        let summary = serve(input.as_bytes(), &mut output, config).unwrap();
        let responses = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        (responses, summary)
    }

    fn req(id: i64, session: &str, rest: &str) -> String {
        format!(r#"{{"id":{id},"session":"{session}",{rest}}}"#)
    }

    fn by_id(responses: &[Json], id: i64) -> &Json {
        responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_i64) == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    }

    #[test]
    fn open_edit_schedule_stats_close_round_trip() {
        let design = DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(
                2,
                "s",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
            req(3, "s", r#""op":"schedule""#),
            req(4, "s", r#""op":"stats""#),
            req(5, "s", r#""op":"close""#),
            req(6, "s", r#""op":"schedule""#),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 6);
        assert_eq!(summary.sessions_opened, 1);
        assert_eq!(
            by_id(&responses, 1).get("verdict").unwrap(),
            &Json::from("well-posed")
        );
        let edit = by_id(&responses, 2);
        assert_eq!(edit.get("outcome").unwrap(), &Json::from("rescheduled"));
        assert_eq!(
            edit.get("warm_anchors").unwrap(),
            edit.get("total_anchors").unwrap(),
            "additive edits warm-start every anchor"
        );
        let sched = by_id(&responses, 3);
        let sigma = sched
            .get("offsets")
            .and_then(|o| o.get("out"))
            .and_then(|r| r.get("sync"))
            .and_then(Json::as_i64);
        assert_eq!(sigma, Some(3), "min constraint pushed out to 3 after sync");
        let stats = by_id(&responses, 4);
        assert!(stats.get("reschedules").and_then(Json::as_i64) >= Some(2));
        assert_eq!(stats.get("journal_len"), Some(&Json::Int(1)));
        assert_eq!(stats.get("total_edits"), Some(&Json::Int(1)));
        assert_eq!(stats.get("compactions"), Some(&Json::Int(0)));
        assert_eq!(stats.get("quarantined"), Some(&Json::Bool(false)));
        assert_eq!(by_id(&responses, 5).get("ok"), Some(&Json::Bool(true)));
        // After close, the session is gone.
        assert_eq!(by_id(&responses, 6).get("ok"), Some(&Json::Bool(false)));
        assert_eq!(summary.errors, 1);
    }

    /// Four concurrent 2-cycle ops: under a unit budget the optimize
    /// loop must serialize them (pressure 0 at the end).
    const FAN_DESIGN: &str = "op a 2\nop b 2\nop c 2\nop d 2\n";

    #[test]
    fn optimize_round_trip_journals_accepted_edits() {
        let design = FAN_DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(2, "s", r#""op":"optimize","budget":1"#),
            req(3, "s", r#""op":"schedule""#),
            req(4, "s", r#""op":"stats""#),
            req(5, "s", r#""op":"recover""#),
            req(6, "s", r#""op":"schedule""#),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.errors, 0);
        let opt = by_id(&responses, 2);
        assert_eq!(opt.get("ok"), Some(&Json::Bool(true)));
        assert!(opt.get("accepted_rounds").and_then(Json::as_i64) >= Some(1));
        let edges_added = opt.get("edges_added").and_then(Json::as_i64).unwrap();
        assert!(edges_added >= 1, "unit budget must serialize the fan");
        assert_eq!(
            opt.get("final").and_then(|o| o.get("pressure")),
            Some(&Json::Int(0)),
            "accepted state must fit the budget"
        );
        assert_eq!(opt.get("converged"), Some(&Json::Bool(true)));
        assert_eq!(opt.get("verdict"), Some(&Json::from("well-posed")));
        // Accepted edges journal as ordinary edits...
        let stats = by_id(&responses, 4);
        assert_eq!(stats.get("journal_len"), Some(&Json::Int(edges_added)));
        // ...so recovery replays the exploration: the replayed session's
        // schedule is identical to the live optimized one.
        let recover = by_id(&responses, 5);
        assert_eq!(recover.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(recover.get("edits_replayed"), Some(&Json::Int(edges_added)));
        assert_eq!(
            by_id(&responses, 6).get("offsets"),
            by_id(&responses, 3).get("offsets"),
            "recovered schedule must match the optimized one"
        );
    }

    #[test]
    fn optimize_respects_edge_quota_and_validates_params() {
        let design = FAN_DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(2, "s", r#""op":"optimize","budget":0"#),
            req(3, "s", r#""op":"optimize","max_rounds":1000"#),
            req(4, "s", r#""op":"optimize","style":"thermometer""#),
            req(5, "s", r#""op":"optimize","budget":1"#),
        ];
        let config = ServeConfig {
            // Zero headroom: the loop must stop before adding any edge.
            max_edges: Some(0),
            ..ServeConfig::default()
        };
        let (responses, _) = run_lines(&lines, &config);
        for id in 2..=4 {
            assert_eq!(by_id(&responses, id).get("ok"), Some(&Json::Bool(false)));
        }
        let opt = by_id(&responses, 5);
        assert_eq!(opt.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(opt.get("edge_budget_exhausted"), Some(&Json::Bool(true)));
        assert_eq!(opt.get("edges_added"), Some(&Json::Int(0)));
        assert_eq!(opt.get("accepted_rounds"), Some(&Json::Int(0)));
    }

    #[test]
    fn malformed_and_unknown_requests_answer_in_band() {
        let lines = vec![
            "{not json".to_owned(),
            req(1, "nope", r#""op":"schedule""#),
            req(2, "s", r#""op":"frobnicate""#),
            r#"{"id":3,"op":"schedule"}"#.to_owned(),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.errors, 4);
        assert!(responses.iter().any(|r| r.get("id") == Some(&Json::Null)
            && r.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("malformed")));
        assert!(by_id(&responses, 3)
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("session"));
    }

    #[test]
    fn unknown_or_missing_op_echoes_id_with_exact_shape() {
        // Locks the error contract: a frame with an unknown or missing
        // op — even without a "session" — is answered in-band with its
        // id echoed (null when the frame had none or did not parse), as
        // exactly `{"id":…,"ok":false,"error":…}`.
        let lines = vec![
            r#"{"id":7,"op":"frobnicate"}"#.to_owned(),
            r#"{"id":"x9"}"#.to_owned(),
            "{not json".to_owned(),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 3);
        assert_eq!(
            by_id(&responses, 7),
            &Json::parse(r#"{"id":7,"ok":false,"error":"unknown op 'frobnicate'"}"#).unwrap()
        );
        let missing_op = responses
            .iter()
            .find(|r| r.get("id") == Some(&Json::Str("x9".to_owned())))
            .expect("missing-op frame must be answered");
        assert_eq!(
            missing_op,
            &Json::parse(r#"{"id":"x9","ok":false,"error":"missing \"op\""}"#).unwrap()
        );
        let malformed = responses
            .iter()
            .find(|r| r.get("id") == Some(&Json::Null))
            .expect("unparsable frame must be answered under id null");
        assert_eq!(malformed.get("ok"), Some(&Json::Bool(false)));
        assert!(malformed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("malformed request:"));
    }

    #[test]
    fn zero_deadline_expires_before_execution() {
        let design = DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(2, "s", r#""op":"schedule","deadline_ms":0"#),
            req(3, "s", r#""op":"schedule""#),
        ];
        let (responses, _) = run_lines(&lines, &ServeConfig::default());
        let expired = by_id(&responses, 2);
        assert_eq!(expired.get("ok"), Some(&Json::Bool(false)));
        assert!(expired
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("deadline"));
        // Later requests on the same session still execute.
        assert_eq!(by_id(&responses, 3).get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn batch_schedule_returns_results_in_input_order() {
        let design = DESIGN.replace('\n', "\\n");
        // d1 is unfeasible (min 9 against max 4), d2 is malformed.
        let infeasible = format!("{design}min alu out 9\\n");
        let lines = vec![format!(
            concat!(
                r#"{{"id":1,"op":"batch_schedule","threads":4,"designs":["#,
                r#"{{"name":"d0","design":"{d0}"}},"#,
                r#"{{"name":"d1","design":"{d1}"}},"#,
                r#"{{"name":"d2","design":"op oops"}},"#,
                r#"{{"name":"d3","design":"{d0}"}}]}}"#
            ),
            d0 = design,
            d1 = infeasible,
        )];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.sessions_opened, 0);
        let response = by_id(&responses, 1);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let results = response.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.get("name").and_then(Json::as_str),
                Some(&*format!("d{i}"))
            );
        }
        assert_eq!(
            results[0].get("verdict").unwrap(),
            &Json::from("well-posed")
        );
        assert_eq!(
            results[1]
                .get("verdict")
                .and_then(|v| v.get("kind"))
                .and_then(Json::as_str),
            Some("unfeasible")
        );
        assert_eq!(results[2].get("ok"), Some(&Json::Bool(false)));
        assert!(results[2]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("bad design"));
        // The same design gives the same result wherever it sits in the batch.
        assert_eq!(results[3].get("iterations"), results[0].get("iterations"));
        assert_eq!(results[3].get("anchors"), results[0].get("anchors"));
    }

    #[test]
    fn batch_schedule_thread_counts_agree() {
        let design = DESIGN.replace('\n', "\\n");
        let batch = |id: i64, threads: usize| {
            let entries: Vec<String> = (0..6)
                .map(|i| format!(r#"{{"name":"d{i}","design":"{design}"}}"#))
                .collect();
            format!(
                r#"{{"id":{id},"op":"batch_schedule","threads":{threads},"designs":[{}]}}"#,
                entries.join(",")
            )
        };
        let (responses, _) = run_lines(&[batch(1, 1), batch(2, 8)], &ServeConfig::default());
        let serial = by_id(&responses, 1).get("results").cloned();
        let fanned = by_id(&responses, 2).get("results").cloned();
        assert!(serial.is_some());
        assert_eq!(serial, fanned);
    }

    #[test]
    fn sessions_are_independent_across_workers() {
        let design = DESIGN.replace('\n', "\\n");
        let mut lines = Vec::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let base = (i as i64) * 10;
            lines.push(req(
                base + 1,
                name,
                &format!(r#""op":"open","design":"{design}""#),
            ));
            lines.push(req(
                base + 2,
                name,
                r#""op":"edit","kind":"set_delay","vertex":"alu","delay":"unbounded""#,
            ));
            lines.push(req(
                base + 3,
                name,
                r#""op":"edit","kind":"set_delay","vertex":"alu","delay":2"#,
            ));
            lines.push(req(base + 4, name, r#""op":"schedule""#));
        }
        let (responses, summary) = run_lines(
            &lines,
            &ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            },
        );
        assert_eq!(summary.sessions_opened, 4);
        assert_eq!(summary.errors, 0);
        for i in 0..4 {
            let base = (i as i64) * 10;
            // Unbounded alu makes the max constraint ill-posed…
            assert_eq!(
                by_id(&responses, base + 2)
                    .get("outcome")
                    .and_then(Json::as_str),
                Some("ill-posed")
            );
            // …and restoring the fixed delay heals it, in order, per session.
            assert_eq!(
                by_id(&responses, base + 3)
                    .get("outcome")
                    .and_then(Json::as_str),
                Some("rescheduled")
            );
            assert_eq!(
                by_id(&responses, base + 4).get("verdict").unwrap(),
                &Json::from("well-posed")
            );
        }
    }

    #[test]
    fn panic_is_isolated_and_session_recovers() {
        const SCOPE: u64 = 0x5e41;
        let design = DESIGN.replace('\n', "\\n");
        // Requests on one worker execute in order: open and the first
        // edit pass (skip 2), the second edit panics (count 1).
        let _g = failpoint::arm("serve::handle", Some(SCOPE), FailAction::Panic, 2, Some(1));
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(
                2,
                "s",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
            req(
                3,
                "s",
                r#""op":"edit","kind":"add_min","from":"sync","to":"out","value":1"#,
            ),
            req(4, "s", r#""op":"schedule""#),
            req(5, "s", r#""op":"stats""#),
            req(6, "s", r#""op":"recover""#),
            req(7, "s", r#""op":"schedule""#),
        ];
        let (responses, summary) = run_lines(
            &lines,
            &ServeConfig {
                workers: 1,
                fault_scope: Some(SCOPE),
                ..ServeConfig::default()
            },
        );
        let panic = by_id(&responses, 3);
        assert_eq!(panic.get("ok"), Some(&Json::Bool(false)));
        assert!(panic
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("worker_panic:"));
        assert_eq!(panic.get("quarantined"), Some(&Json::Bool(true)));
        // Quarantined: schedule refuses, stats still reports.
        let refused = by_id(&responses, 4);
        assert_eq!(refused.get("ok"), Some(&Json::Bool(false)));
        assert!(refused
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("quarantined"));
        let stats = by_id(&responses, 5);
        assert_eq!(stats.get("quarantined"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("journal_len"), Some(&Json::Int(1)));
        // Recover replays the journal (open + 1 accepted edit)…
        let recover = by_id(&responses, 6);
        assert_eq!(recover.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(recover.get("was_quarantined"), Some(&Json::Bool(true)));
        assert_eq!(recover.get("edits_replayed"), Some(&Json::Int(1)));
        assert_eq!(recover.get("snapshot"), Some(&Json::Bool(false)));
        // …and the schedule afterwards reflects exactly that edit.
        let sched = by_id(&responses, 7);
        assert_eq!(sched.get("ok"), Some(&Json::Bool(true)));
        let sigma = sched
            .get("offsets")
            .and_then(|o| o.get("out"))
            .and_then(|r| r.get("sync"))
            .and_then(Json::as_i64);
        assert_eq!(sigma, Some(3), "recovered state includes the accepted edit");
        assert_eq!(summary.panics, 1);
        assert_eq!(summary.quarantined, 1);
        assert_eq!(summary.recoveries, 1);
        assert_eq!(summary.requests, 7);
    }

    #[test]
    fn worker_death_respawns_and_loses_nothing() {
        const SCOPE: u64 = 0x5e42;
        let design = DESIGN.replace('\n', "\\n");
        // The kill site is evaluated once per job attempt, before recv:
        // skip 1 lets the open through, then the worker dies with the
        // remaining jobs queued. The replacement drains them.
        let _g = failpoint::arm(
            "serve::worker_kill",
            Some(SCOPE),
            FailAction::Panic,
            1,
            Some(1),
        );
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(
                2,
                "s",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
            req(3, "s", r#""op":"schedule""#),
        ];
        let (responses, summary) = run_lines(
            &lines,
            &ServeConfig {
                workers: 1,
                fault_scope: Some(SCOPE),
                ..ServeConfig::default()
            },
        );
        assert_eq!(
            summary.requests, 3,
            "every request answered despite the kill"
        );
        assert_eq!(summary.errors, 0);
        assert!(summary.workers_respawned >= 1);
        assert_eq!(
            by_id(&responses, 2).get("outcome").and_then(Json::as_str),
            Some("rescheduled"),
            "session opened before the kill survives into the respawned worker"
        );
        assert_eq!(by_id(&responses, 3).get("ok"), Some(&Json::Bool(true)));
    }

    /// Feeds each chunk after its delay, so a test can let the worker
    /// reach a known state (e.g. stalled in a Delay failpoint) before the
    /// dispatcher sees the next requests.
    struct PacedReader {
        chunks: std::vec::IntoIter<(u64, Vec<u8>)>,
    }

    impl io::Read for PacedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.next() {
                None => Ok(0),
                Some((delay_ms, bytes)) => {
                    thread::sleep(Duration::from_millis(delay_ms));
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        const SCOPE: u64 = 0x5e43;
        let design = DESIGN.replace('\n', "\\n");
        // Stall the worker on the first request so the single-slot queue
        // fills: request 2 queues, request 3 is shed at intake. The
        // paced input guarantees the worker has already dequeued request
        // 1 (and is sleeping in the failpoint) before 2 and 3 arrive.
        let _g = failpoint::arm(
            "serve::handle",
            Some(SCOPE),
            FailAction::Delay(Duration::from_millis(500)),
            0,
            Some(1),
        );
        let chunks = vec![
            (
                0,
                format!(
                    "{}\n",
                    req(1, "s", &format!(r#""op":"open","design":"{design}""#))
                ),
            ),
            (
                150,
                format!(
                    "{}\n{}\n",
                    req(2, "s", r#""op":"schedule""#),
                    req(3, "s", r#""op":"schedule""#)
                ),
            ),
        ];
        let input = io::BufReader::new(PacedReader {
            chunks: chunks
                .into_iter()
                .map(|(d, s)| (d, s.into_bytes()))
                .collect::<Vec<_>>()
                .into_iter(),
        });
        let mut output = Vec::new();
        let summary = serve(
            input,
            &mut output,
            &ServeConfig {
                workers: 1,
                queue_depth: 1,
                fault_scope: Some(SCOPE),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let responses: Vec<Json> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(summary.requests, 3, "shed requests are still answered");
        assert!(summary.shed >= 1);
        let shed = by_id(&responses, 3);
        assert_eq!(shed.get("ok"), Some(&Json::Bool(false)));
        assert!(shed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("overloaded:"));
        assert_eq!(shed.get("retry_after_ms"), Some(&Json::Int(RETRY_AFTER_MS)));
        // The queued request (2) still executed after the stall.
        assert_eq!(by_id(&responses, 2).get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn resource_limits_reject_at_intake_with_exact_shape() {
        let design = DESIGN.replace('\n', "\\n"); // 3 ops, 3 constraint lines
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            format!(
                r#"{{"id":2,"op":"batch_schedule","designs":[{{"name":"big","design":"{design}"}}]}}"#
            ),
        ];
        let (responses, summary) = run_lines(
            &lines,
            &ServeConfig {
                max_ops: Some(2),
                ..ServeConfig::default()
            },
        );
        assert_eq!(summary.errors, 2);
        assert_eq!(summary.sessions_opened, 0);
        assert_eq!(
            by_id(&responses, 1),
            &Json::parse(
                r#"{"id":1,"ok":false,"error":"resource limit exceeded: design has 3 operations, limit 2"}"#
            )
            .unwrap()
        );
        assert_eq!(
            by_id(&responses, 2),
            &Json::parse(
                r#"{"id":2,"ok":false,"error":"resource limit exceeded: design 'big' has 3 operations, limit 2"}"#
            )
            .unwrap()
        );
        // Edge limits use their own message.
        let (responses, _) = run_lines(
            &lines[..1],
            &ServeConfig {
                max_edges: Some(1),
                ..ServeConfig::default()
            },
        );
        assert!(by_id(&responses, 1)
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("3 constraint edges, limit 1"));
    }

    #[test]
    fn recover_works_on_live_sessions_and_rejects_unknown() {
        let design = DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(
                2,
                "s",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
            req(3, "s", r#""op":"schedule""#),
            req(4, "s", r#""op":"recover""#),
            req(5, "s", r#""op":"schedule""#),
            req(6, "ghost", r#""op":"recover""#),
        ];
        let (responses, summary) = run_lines(&lines, &ServeConfig::default());
        let recover = by_id(&responses, 4);
        assert_eq!(recover.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(recover.get("was_quarantined"), Some(&Json::Bool(false)));
        // Replay of a live session is an identity: same offsets.
        assert_eq!(
            by_id(&responses, 3).get("offsets"),
            by_id(&responses, 5).get("offsets")
        );
        assert_eq!(by_id(&responses, 6).get("ok"), Some(&Json::Bool(false)));
        assert_eq!(summary.recoveries, 1);
    }

    #[test]
    fn journal_dir_mirrors_sessions_to_wal_files() {
        let dir = std::env::temp_dir().join(format!("rsched_serve_wal_{}", std::process::id()));
        let design = DESIGN.replace('\n', "\\n");
        let lines = vec![
            req(
                1,
                "my session!",
                &format!(r#""op":"open","design":"{design}""#),
            ),
            req(
                2,
                "my session!",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
        ];
        let (_, summary) = run_lines(
            &lines,
            &ServeConfig {
                workers: 1,
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            },
        );
        assert_eq!(summary.errors, 0);
        let wal = dir.join(wal_file_name("my session!"));
        let text = std::fs::read_to_string(&wal).expect("WAL mirror written");
        assert_eq!(
            text.lines().count(),
            2,
            "open + one accepted edit, group-committed by EOF"
        );
        assert!(text.lines().nth(1).unwrap().contains("\"op\":\"add_min\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_every_compacts_and_recovery_replays_delta_only() {
        let dir = std::env::temp_dir().join(format!("rsched_serve_snap_{}", std::process::id()));
        let design = DESIGN.replace('\n', "\\n");
        // Five accepted edits with snapshot_every=2: compactions after
        // edits 2 and 4, leaving a 1-edit delta.
        let mut lines = vec![req(1, "s", &format!(r#""op":"open","design":"{design}""#))];
        for (i, v) in [3i64, 1, 4, 2, 3].iter().enumerate() {
            lines.push(req(
                i as i64 + 2,
                "s",
                &format!(r#""op":"edit","kind":"set_delay","vertex":"alu","delay":{v}"#),
            ));
        }
        lines.push(req(10, "s", r#""op":"stats""#));
        lines.push(req(11, "s", r#""op":"recover""#));
        lines.push(req(12, "s", r#""op":"schedule""#));
        let (responses, summary) = run_lines(
            &lines,
            &ServeConfig {
                workers: 1,
                snapshot_every: 2,
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            },
        );
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.snapshots, 2);
        let stats = by_id(&responses, 10);
        assert_eq!(stats.get("journal_len"), Some(&Json::Int(1)));
        assert_eq!(stats.get("total_edits"), Some(&Json::Int(5)));
        assert_eq!(stats.get("compactions"), Some(&Json::Int(2)));
        let recover = by_id(&responses, 11);
        assert_eq!(recover.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            recover.get("edits_replayed"),
            Some(&Json::Int(1)),
            "recovery replays only the post-snapshot delta"
        );
        assert_eq!(recover.get("snapshot"), Some(&Json::Bool(true)));
        // The recovered schedule reflects the full edit history: the
        // last set_delay put alu at 3, so out trails sync by 3.
        let sigma = by_id(&responses, 12)
            .get("offsets")
            .and_then(|o| o.get("out"))
            .and_then(|r| r.get("sync"))
            .and_then(Json::as_i64);
        assert_eq!(sigma, Some(3));
        // The WAL was rewritten to snapshot + delta, not full history.
        let wal = dir.join(wal_file_name("s"));
        let text = std::fs::read_to_string(&wal).expect("WAL mirror written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"op\":\"snapshot\""), "{text}");
        assert_eq!(lines.len(), 2, "snapshot base + 1 delta edit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_recovery_rebuilds_sessions_across_restarts() {
        // Kill-and-restart: run one serve process to completion with a
        // journal directory, then start a second one over the same
        // directory. The second process must answer for the first one's
        // session — schedule, stats, and further edits — without any
        // client re-open, and the rebuilt offsets must match.
        let dir = std::env::temp_dir().join(format!("rsched_boot_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            journal_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let design = DESIGN.replace('\n', "\\n");
        let run1 = vec![
            req(1, "s", &format!(r#""op":"open","design":"{design}""#)),
            req(
                2,
                "s",
                r#""op":"edit","kind":"add_min","from":"alu","to":"out","value":3"#,
            ),
            req(3, "s", r#""op":"schedule""#),
        ];
        let (before, summary1) = run_lines(&run1, &config);
        assert_eq!(summary1.errors, 0);
        let offsets_before = by_id(&before, 3).get("offsets").cloned().unwrap();

        // "Restart": a fresh serve over the same journal directory, with
        // no open — every request targets the recovered session.
        let run2 = vec![
            req(10, "s", r#""op":"stats""#),
            req(11, "s", r#""op":"schedule""#),
            req(
                12,
                "s",
                r#""op":"edit","kind":"add_min","from":"sync","to":"out","value":1"#,
            ),
        ];
        let (after, summary2) = run_lines(&run2, &config);
        assert_eq!(summary2.errors, 0, "recovered session must be live");
        let stats = by_id(&after, 10);
        assert_eq!(stats.get("quarantined"), Some(&Json::Bool(false)));
        assert_eq!(stats.get("journal_len"), Some(&Json::Int(1)));
        let offsets_after = by_id(&after, 11).get("offsets").cloned().unwrap();
        assert_eq!(
            offsets_after, offsets_before,
            "recovered schedule diverges from the pre-restart one"
        );
        // The Router-level counter records the rebuild.
        let router = Router::new(2, &config);
        assert_eq!(router.stats().boot_recovered, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_recovery_truncates_a_torn_wal_tail() {
        // A crash mid-append leaves a half-written last line. Recovery
        // must keep the good prefix, rewrite the file to it, and still
        // rebuild the session.
        let dir = std::env::temp_dir().join(format!("rsched_boot_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            journal_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let design = DESIGN.replace('\n', "\\n");
        let run1 = vec![req(1, "s", &format!(r#""op":"open","design":"{design}""#))];
        let (_, summary1) = run_lines(&run1, &config);
        assert_eq!(summary1.errors, 0);
        let wal = dir.join(wal_file_name("s"));
        let mut text = std::fs::read_to_string(&wal).unwrap();
        text.push_str("{\"op\":\"add_min\",\"fr"); // torn mid-record
        std::fs::write(&wal, &text).unwrap();

        let router = Router::new(2, &config);
        assert_eq!(router.stats().boot_recovered, 1);
        let rewritten = std::fs::read_to_string(&wal).unwrap();
        assert!(
            !rewritten.contains("\"fr"),
            "torn tail must be truncated, got: {rewritten}"
        );
        let slot = shard_of("s", router.n_slots());
        let response = router.execute(slot, Json::Int(1), &req_json("s", r#""op":"schedule""#));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Parses a request body the way `run_lines` inputs are written.
    fn req_json(session: &str, rest: &str) -> Json {
        Json::parse(&req(1, session, rest)).unwrap()
    }

    #[test]
    fn open_hits_cache_for_isomorphic_designs() {
        // Same structure, different operation names and declaration
        // order: the second open must be served from the canonical-form
        // cache, and its schedule must carry the *second* design's names.
        let config = ServeConfig {
            cache_capacity: 64,
            workers: 1,
            ..ServeConfig::default()
        };
        let design_a = DESIGN.replace('\n', "\\n");
        let design_b = "op b_out 1\\nop b_sync unbounded\\nop b_alu 2\\ndep b_sync b_alu\\ndep b_alu b_out\\nmax b_alu b_out 4\\n";
        let lines = vec![
            req(1, "a", &format!(r#""op":"open","design":"{design_a}""#)),
            req(2, "b", &format!(r#""op":"open","design":"{design_b}""#)),
            req(3, "a", r#""op":"schedule""#),
            req(4, "b", r#""op":"schedule""#),
            req(5, "a", r#""op":"stats""#),
        ];
        let (responses, summary) = run_lines(&lines, &config);
        assert_eq!(summary.errors, 0);
        let cache = by_id(&responses, 5).get("cache").cloned().unwrap();
        assert_eq!(cache.get("hits"), Some(&Json::Int(1)), "{cache:?}");
        assert_eq!(cache.get("misses"), Some(&Json::Int(1)));
        assert_eq!(cache.get("inserts"), Some(&Json::Int(1)));
        let sigma = |r: &Json, v: &str, a: &str| {
            r.get("offsets")
                .and_then(|o| o.get(v))
                .and_then(|row| row.get(a))
                .and_then(Json::as_i64)
        };
        let a = by_id(&responses, 3);
        let b = by_id(&responses, 4);
        assert_eq!(
            sigma(a, "out", "sync"),
            sigma(b, "b_out", "b_sync"),
            "cached schedule must be identical under the hit's own names"
        );
        assert!(sigma(b, "b_out", "b_sync").is_some());
    }

    #[test]
    fn batch_schedule_responses_are_identical_with_and_without_cache() {
        // The cache must be response-invisible: the same batch (with an
        // internal duplicate, so the cached run takes hits) produces
        // byte-identical results either way.
        let design = DESIGN.replace('\n', "\\n");
        let line = format!(
            r#"{{"id":1,"op":"batch_schedule","designs":[{{"name":"x","design":"{design}"}},{{"name":"y","design":"{design}"}},{{"name":"z","design":"bad"}}]}}"#
        );
        let run = |capacity: usize| {
            let config = ServeConfig {
                cache_capacity: capacity,
                ..ServeConfig::default()
            };
            let (responses, _) = run_lines(std::slice::from_ref(&line), &config);
            responses[0].clone()
        };
        assert_eq!(run(0), run(64));
    }
}
