//! `rsched-engine` — incremental re-scheduling on top of `rsched-core`,
//! plus the JSON-lines scheduling service behind `rsched serve`.
//!
//! The paper's iterative incremental scheduler recomputes a minimum
//! relative schedule from scratch on every invocation. Interactive
//! synthesis (constraint tweaking, what-if latency exploration, editor
//! integrations) instead makes long chains of *small* edits, each of
//! which perturbs only part of the analysis. This crate adds:
//!
//! - [`Session`] — owns a constraint graph plus cached analyses and
//!   applies edits (`add_dependency`, `add_min_constraint`,
//!   `add_max_constraint`, `remove_edge`, `set_delay`) by warm-starting
//!   the fixpoint iteration from the previous offsets, restarting only
//!   the anchor columns an edit can actually change. Every edit returns a
//!   structured [`EditOutcome`] whose verdicts (including ill-posedness
//!   witnesses) are bit-identical to a cold [`rsched_core::schedule`].
//! - [`serve`] — a batched JSON-lines service over any `BufRead`/`Write`
//!   pair (stdin/stdout in the CLI): `open`/`edit`/`schedule`/`stats`/
//!   `close` requests with id correlation, a bounded worker pool with
//!   per-session ordering, per-request deadlines, and clean EOF shutdown.
//! - [`Router`] — the transport-agnostic core of the service (session
//!   tables sharded by [`shard_of`], validation, panic isolation,
//!   journaling with snapshot compaction); the `rsched-net` crate mounts
//!   the same router behind a socket listener, so socket and stdio
//!   responses are bit-identical for the same op stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod optimize;
pub mod service;
pub mod session;

pub use journal::{Journal, JournalOp, ScheduleSeed};
pub use optimize::{
    Objective, OptimizeConfig, OptimizeError, OptimizeReport, Optimizer, RoundReport,
};
pub use service::{
    error_response, overloaded_response, serve, shard_of, Router, RouterStats, ServeConfig,
    ServeSummary, DEADLINE_ERROR, MALFORMED_UTF8_ERROR,
};
pub use session::{EditOutcome, Session, SessionStats};
