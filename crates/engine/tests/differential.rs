//! Differential property test: an incremental [`Session`] fed a random
//! edit sequence must agree, after **every** edit, with a cold
//! [`rsched_core::schedule`] of the same graph — identical offsets,
//! identical anchor sets, and an identical well-posedness verdict
//! (including ill-posedness violation lists and unfeasibility witnesses).
//!
//! The mirror graph applies the same mutations through the plain
//! `ConstraintGraph` API, so the test also pins down that the session
//! accepts and rejects exactly the edits the graph layer does.
//!
//! The cold result at every step is additionally judged by the
//! first-principles oracle (`rsched_oracle::check_result`), so the warm
//! and cold paths are not just pinned to each other — both are pinned to
//! an independent re-derivation of the paper's theorems.

use proptest::prelude::*;

use rsched_core::{check_well_posed, schedule, ScheduleError, WellPosedness};
use rsched_designs::random::{random_constraint_graph, RandomGraphConfig};
use rsched_engine::{EditOutcome, Session};
use rsched_graph::{ConstraintGraph, EdgeId, ExecDelay, VertexId};

/// One random edit; indices are resolved modulo the live operation/edge
/// counts at application time.
#[derive(Debug, Clone)]
enum EditSpec {
    AddDep(usize, usize),
    AddMin(usize, usize, u64),
    AddMax(usize, usize, u64),
    RemoveEdge(usize),
    /// `0` means unbounded, `d > 0` means `Fixed(d)`.
    SetDelay(usize, u64),
}

fn edit_spec() -> BoxedStrategy<EditSpec> {
    prop_oneof![
        1 => (0usize..64, 0usize..64).prop_map(|(a, b)| EditSpec::AddDep(a, b)),
        1 => (0usize..64, 0usize..64, 0u64..6).prop_map(|(a, b, l)| EditSpec::AddMin(a, b, l)),
        2 => (0usize..64, 0usize..64, 0u64..12).prop_map(|(a, b, u)| EditSpec::AddMax(a, b, u)),
        2 => (0usize..256).prop_map(EditSpec::RemoveEdge),
        2 => (0usize..64, 0u64..5).prop_map(|(v, d)| EditSpec::SetDelay(v, d)),
    ]
    .boxed()
}

fn pick(list: &[VertexId], i: usize) -> VertexId {
    list[i % list.len()]
}

/// Applies `spec` to both sides and checks that acceptance matches;
/// returns `true` when the graph actually changed.
fn apply(spec: &EditSpec, session: &mut Session, mirror: &mut ConstraintGraph) -> bool {
    let ops: Vec<VertexId> = mirror.operation_ids().collect();
    match *spec {
        EditSpec::AddDep(a, b) => {
            let (f, t) = (pick(&ops, a), pick(&ops, b));
            let cold = mirror.add_dependency(f, t);
            let warm = session.add_dependency(f, t);
            assert_accepts_match(&warm, &cold.map(|_| ()));
            cold_is_ok(&warm)
        }
        EditSpec::AddMin(a, b, l) => {
            let (f, t) = (pick(&ops, a), pick(&ops, b));
            let cold = mirror.add_min_constraint(f, t, l);
            let warm = session.add_min_constraint(f, t, l);
            assert_accepts_match(&warm, &cold.map(|_| ()));
            cold_is_ok(&warm)
        }
        EditSpec::AddMax(a, b, u) => {
            let (f, t) = (pick(&ops, a), pick(&ops, b));
            let cold = mirror.add_max_constraint(f, t, u);
            let warm = session.add_max_constraint(f, t, u);
            assert_accepts_match(&warm, &cold.map(|_| ()));
            cold_is_ok(&warm)
        }
        EditSpec::RemoveEdge(k) => {
            let edges: Vec<EdgeId> = mirror.edges().map(|(id, _)| id).collect();
            if edges.is_empty() {
                return false;
            }
            let e = edges[k % edges.len()];
            mirror.remove_edge(e).expect("picked a live edge");
            let warm = session.remove_edge(e);
            assert!(
                !matches!(warm, EditOutcome::Rejected { .. }),
                "session rejected a live edge removal: {warm:?}"
            );
            true
        }
        EditSpec::SetDelay(v, d) => {
            let v = pick(&ops, v);
            let delay = if d == 0 {
                ExecDelay::Unbounded
            } else {
                ExecDelay::Fixed(d)
            };
            let cold = mirror.set_delay(v, delay);
            let warm = session.set_delay(v, delay);
            match (&warm, &cold) {
                (EditOutcome::Unchanged, Ok(false)) => false,
                (EditOutcome::Rejected { error }, Err(e)) => {
                    assert_eq!(error, e);
                    false
                }
                (w, Ok(true))
                    if !matches!(w, EditOutcome::Rejected { .. } | EditOutcome::Unchanged) =>
                {
                    true
                }
                (w, c) => panic!("set_delay divergence: session={w:?}, mirror={c:?}"),
            }
        }
    }
}

fn assert_accepts_match(warm: &EditOutcome, cold: &Result<(), rsched_graph::GraphError>) {
    match (warm, cold) {
        (EditOutcome::Rejected { error }, Err(e)) => assert_eq!(error, e),
        (EditOutcome::Rejected { error }, Ok(())) => {
            panic!("session rejected an edit the graph accepts: {error}")
        }
        (w, Err(e)) => panic!("session accepted an edit the graph rejects ({e}): {w:?}"),
        _ => {}
    }
}

fn cold_is_ok(warm: &EditOutcome) -> bool {
    !matches!(warm, EditOutcome::Rejected { .. })
}

/// The core comparison: session state vs a from-scratch analysis of the
/// mirror graph.
fn assert_matches_cold(session: &Session, mirror: &ConstraintGraph, step: usize) {
    assert_eq!(session.graph().n_edges(), mirror.n_edges(), "step {step}");
    assert_eq!(
        session.graph().n_vertices(),
        mirror.n_vertices(),
        "step {step}"
    );

    // Verdicts must be identical, including violation lists and witnesses.
    let cold_verdict = check_well_posed(mirror).expect("structurally sound");
    assert_eq!(
        session.posedness(),
        &cold_verdict,
        "verdict divergence at step {step}"
    );

    // Anchor sets must be identical.
    let cold = schedule(mirror);

    // Independent referee: whatever the cold path produced — schedule or
    // rejection — must be exactly what the theorems demand of this graph.
    let report = rsched_oracle::check_result(mirror, &cold);
    assert!(
        report.is_ok(),
        "oracle rejected the cold result at step {step}:\n{report}"
    );
    let cold_sets = rsched_core::AnchorSets::compute(mirror).unwrap();
    for v in mirror.vertex_ids() {
        let warm_set: Vec<VertexId> = session.anchor_sets().set(v).collect();
        let cold_set: Vec<VertexId> = cold_sets.set(v).collect();
        assert_eq!(warm_set, cold_set, "A({v}) divergence at step {step}");
    }

    match (&cold_verdict, cold) {
        (WellPosedness::WellPosed, Ok(cold)) => {
            let warm = session
                .schedule()
                .expect("well-posed session holds a schedule");
            assert_eq!(warm.anchors(), cold.anchors(), "step {step}");
            for v in mirror.vertex_ids() {
                for &a in cold.anchors() {
                    assert_eq!(
                        warm.offset(v, a),
                        cold.offset(v, a),
                        "σ_{a}({v}) divergence at step {step}"
                    );
                }
            }
        }
        (WellPosedness::Unfeasible { witness }, Err(ScheduleError::Unfeasible { witness: w })) => {
            assert_eq!(*witness, w, "step {step}")
        }
        (
            WellPosedness::IllPosed { violations },
            Err(ScheduleError::IllPosed { from, to, missing }),
        ) => {
            assert_eq!(violations[0].from, from, "step {step}");
            assert_eq!(violations[0].to, to, "step {step}");
            assert_eq!(violations[0].missing, missing, "step {step}");
        }
        (verdict, cold) => {
            panic!("check/schedule disagreement at step {step}: {verdict:?} vs {cold:?}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random designs, random edit chains: the incremental engine is
    /// indistinguishable from cold re-analysis at every step.
    #[test]
    fn incremental_equals_cold(
        seed in 0u64..10_000,
        n_ops in 4usize..24,
        edits in proptest::collection::vec(edit_spec(), 0..12),
    ) {
        let g = random_constraint_graph(seed, &RandomGraphConfig {
            n_ops,
            ..RandomGraphConfig::default()
        });
        let mut mirror = g.clone();
        let mut session = Session::open(g).expect("random designs are structurally sound");
        assert_matches_cold(&session, &mirror, 0);
        for (i, spec) in edits.iter().enumerate() {
            apply(spec, &mut session, &mut mirror);
            assert_matches_cold(&session, &mirror, i + 1);
        }
    }

    /// Pure additive chains keep every anchor warm: the reschedule report
    /// must claim full warm coverage whenever the graph stays well-posed.
    #[test]
    fn additive_edits_stay_fully_warm(
        seed in 0u64..10_000,
        n_ops in 4usize..16,
        pairs in proptest::collection::vec((0usize..64, 0usize..64, 0u64..4), 1..8),
    ) {
        let g = random_constraint_graph(seed, &RandomGraphConfig {
            n_ops,
            n_max_constraints: 0,
            unbounded_prob: 0.3,
            ..RandomGraphConfig::default()
        });
        let mut session = Session::open(g).expect("opens");
        prop_assert!(session.posedness().is_well_posed());
        for &(a, b, l) in &pairs {
            let ops: Vec<VertexId> = session.graph().operation_ids().collect();
            let (f, t) = (pick(&ops, a), pick(&ops, b));
            match session.add_min_constraint(f, t, l) {
                EditOutcome::Rescheduled { warm_anchors, total_anchors, .. } => {
                    prop_assert_eq!(warm_anchors, total_anchors);
                }
                EditOutcome::Rejected { .. } | EditOutcome::Unfeasible { .. } => {}
                other => panic!("min-only edits cannot ill-pose the graph: {other:?}"),
            }
        }
    }
}
