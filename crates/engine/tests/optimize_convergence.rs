//! Convergence contract of the feedback-guided optimize loop:
//!
//! * the loop terminates within `max_rounds`;
//! * the scalarized objective is monotone non-increasing over accepted
//!   rounds;
//! * every accepted round's state is oracle-verified (the paper's
//!   theorems re-proven from the graph alone);
//! * the final schedule is **bit-identical** to a cold schedule of the
//!   final edited graph — the warm path the loop rode is transparent.
//!
//! Runs as a proptest over random mutator designs plus pinned dense
//! sweeps for seeds {42, 7, 1234}.

use proptest::prelude::*;

use rsched_core::schedule;
use rsched_engine::{OptimizeConfig, Optimizer, Session};
use rsched_oracle::{verify, GraphMutator};

/// Runs the full contract for one (seed, budget, threshold) triple.
/// Returns `None` when the grown graph was not well-posed (nothing to
/// optimize), `Some(accepted_rounds)` otherwise. Panics on violations.
fn check_case(seed: u64, max_ops: usize, budget: usize, slack_threshold: i64) -> Option<usize> {
    let mut mutator = GraphMutator::new(seed);
    let graph = mutator.grow(max_ops);
    let session = Session::open(graph).ok()?;
    session.schedule()?;

    let config = OptimizeConfig {
        max_rounds: 6,
        budget,
        slack_threshold,
        ..OptimizeConfig::default()
    };
    let mut optimizer = Optimizer::new(session, config.clone()).expect("scheduled session wraps");
    let mut last_scalar = optimizer.initial().scalar(&config);
    loop {
        assert!(
            optimizer.rounds().len() <= config.max_rounds,
            "seed {seed}: loop exceeded max_rounds"
        );
        let round = match optimizer.step().expect("step never fails on these designs") {
            Some(r) => r.clone(),
            None => break,
        };
        if !round.accepted {
            continue;
        }
        let scalar = round.after.scalar(&config);
        assert!(
            scalar <= last_scalar,
            "seed {seed} round {}: accepted round worsened objective {last_scalar} -> {scalar}",
            round.round
        );
        last_scalar = scalar;
        // Oracle-referee the accepted state before stepping again.
        let s = optimizer.session();
        let omega = s.schedule().expect("accepted state is scheduled");
        let oracle = verify(s.graph(), omega);
        assert!(
            oracle.is_ok(),
            "seed {seed} round {}: oracle refuted accepted state: {oracle}",
            round.round
        );
    }

    // Bit-identical to a cold schedule of the final edited graph.
    let s = optimizer.session();
    let warm = s.schedule().expect("final state is scheduled");
    let cold = schedule(s.graph()).expect("final graph schedules cold");
    assert_eq!(
        cold, *warm,
        "seed {seed}: optimize output diverged from cold schedule"
    );
    Some(optimizer.report().accepted_rounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_converges_monotone_and_cold_identical(
        seed in 0u64..10_000,
        budget in 1usize..4,
        slack_threshold in 0i64..3,
    ) {
        check_case(seed, 14, budget, slack_threshold);
    }
}

/// Dense pinned sweep: the acceptance-criteria seeds drive many mutator
/// designs each, across every budget the proptest explores.
fn pinned_sweep(seed: u64) {
    let mut optimized = 0usize;
    for case in 0..40u64 {
        for budget in 1..=3 {
            if let Some(accepted) = check_case(
                seed.wrapping_mul(0x9e37_79b9).wrapping_add(case),
                12,
                budget,
                1,
            ) {
                optimized += accepted;
            }
        }
    }
    assert!(
        optimized > 0,
        "seed {seed}: sweep never accepted a round — the loop is inert"
    );
}

#[test]
fn pinned_seed_42() {
    pinned_sweep(42);
}

#[test]
fn pinned_seed_7() {
    pinned_sweep(7);
}

#[test]
fn pinned_seed_1234() {
    pinned_sweep(1234);
}
