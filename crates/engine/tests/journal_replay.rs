//! Journal-replay determinism: recovery must be indistinguishable from
//! never having crashed.
//!
//! A live [`Session`] absorbs a random edit chain while a [`Journal`]
//! records exactly the accepted mutations (the same rule the serve layer
//! uses: rejected and no-op edits are never journaled). After **every**
//! prefix, [`Journal::replay`] rebuilds a fresh session from the design
//! text plus the history, and the rebuilt session must match the live
//! one bit for bit: identical well-posedness verdict (including
//! ill-posedness violation lists and unfeasibility witnesses), identical
//! anchor sets, and identical offsets for every vertex.
//!
//! Well-posed states are additionally judged by the first-principles
//! oracle, so replay is not just pinned to the live engine — both are
//! pinned to an independent re-derivation of the paper's theorems.

use proptest::prelude::*;

use rsched_designs::random::{random_constraint_graph, RandomGraphConfig};
use rsched_engine::{EditOutcome, Journal, JournalOp, Session};
use rsched_graph::{ConstraintGraph, ExecDelay, VertexId};

/// One random edit; indices are resolved modulo the live operation count
/// at application time, exactly as in the differential test.
#[derive(Debug, Clone)]
enum EditSpec {
    AddDep(usize, usize),
    AddMin(usize, usize, u64),
    AddMax(usize, usize, u64),
    /// Removes the first live edge between two picked operations, the
    /// same resolution rule the serve protocol and the journal use.
    RemoveBetween(usize, usize),
    /// `0` means unbounded, `d > 0` means `Fixed(d)`.
    SetDelay(usize, u64),
}

fn edit_spec() -> BoxedStrategy<EditSpec> {
    prop_oneof![
        2 => (0usize..64, 0usize..64).prop_map(|(a, b)| EditSpec::AddDep(a, b)),
        2 => (0usize..64, 0usize..64, 0u64..6).prop_map(|(a, b, l)| EditSpec::AddMin(a, b, l)),
        2 => (0usize..64, 0usize..64, 0u64..12).prop_map(|(a, b, u)| EditSpec::AddMax(a, b, u)),
        2 => (0usize..64, 0usize..64).prop_map(|(a, b)| EditSpec::RemoveBetween(a, b)),
        1 => (0usize..64, 0u64..5).prop_map(|(v, d)| EditSpec::SetDelay(v, d)),
    ]
    .boxed()
}

fn pick(list: &[(VertexId, String)], i: usize) -> (VertexId, String) {
    list[i % list.len()].clone()
}

/// Applies `spec` to the live session; `Some(op)` when the edit was
/// accepted and therefore belongs in the journal.
fn apply_named(spec: &EditSpec, live: &mut Session) -> Option<JournalOp> {
    let ops: Vec<(VertexId, String)> = live
        .graph()
        .operation_ids()
        .map(|v| (v, live.graph().vertex(v).name().to_owned()))
        .collect();
    let (outcome, op) = match *spec {
        EditSpec::AddDep(a, b) => {
            let ((f, fname), (t, tname)) = (pick(&ops, a), pick(&ops, b));
            (
                live.add_dependency(f, t),
                JournalOp::AddDep {
                    from: fname,
                    to: tname,
                },
            )
        }
        EditSpec::AddMin(a, b, value) => {
            let ((f, fname), (t, tname)) = (pick(&ops, a), pick(&ops, b));
            (
                live.add_min_constraint(f, t, value),
                JournalOp::AddMin {
                    from: fname,
                    to: tname,
                    value,
                },
            )
        }
        EditSpec::AddMax(a, b, value) => {
            let ((f, fname), (t, tname)) = (pick(&ops, a), pick(&ops, b));
            (
                live.add_max_constraint(f, t, value),
                JournalOp::AddMax {
                    from: fname,
                    to: tname,
                    value,
                },
            )
        }
        EditSpec::RemoveBetween(a, b) => {
            let ((f, fname), (t, tname)) = (pick(&ops, a), pick(&ops, b));
            let e = live.edge_between(f, t)?;
            (
                live.remove_edge(e),
                JournalOp::RemoveEdge {
                    from: fname,
                    to: tname,
                },
            )
        }
        EditSpec::SetDelay(v, d) => {
            let (v, name) = pick(&ops, v);
            let delay = if d == 0 {
                ExecDelay::Unbounded
            } else {
                ExecDelay::Fixed(d)
            };
            (
                live.set_delay(v, delay),
                JournalOp::SetDelay {
                    vertex: name,
                    delay,
                },
            )
        }
    };
    match outcome {
        EditOutcome::Rejected { .. } | EditOutcome::Unchanged => None,
        _ => Some(op),
    }
}

/// The core comparison: a session rebuilt by replay vs the live one.
fn assert_replay_matches(journal: &Journal, live: &Session, step: usize) {
    let replayed = journal
        .replay()
        .unwrap_or_else(|e| panic!("replay failed at step {step}: {e}"));
    assert_eq!(
        replayed.graph().n_edges(),
        live.graph().n_edges(),
        "edge count divergence at step {step}"
    );
    assert_eq!(
        replayed.posedness(),
        live.posedness(),
        "verdict divergence at step {step}"
    );
    match (replayed.schedule(), live.schedule()) {
        (Some(rebuilt), Some(original)) => {
            assert_eq!(
                rebuilt.anchors(),
                original.anchors(),
                "anchor divergence at step {step}"
            );
            for v in live.graph().vertex_ids() {
                for &a in original.anchors() {
                    assert_eq!(
                        rebuilt.offset(v, a),
                        original.offset(v, a),
                        "σ_{a}({v}) divergence at step {step}"
                    );
                }
            }
            // Independent referee: while the graph is well-posed, the
            // recovered schedule satisfies the paper's theorems on the
            // recovered graph. (Ill-posed sessions retain their last
            // schedule, which only has to match the live one.)
            if live.posedness().is_well_posed() {
                let report = rsched_oracle::verify(replayed.graph(), rebuilt);
                assert!(
                    report.is_ok(),
                    "oracle rejected the replayed schedule at step {step}:\n{report}"
                );
            }
        }
        (None, None) => {}
        (r, l) => panic!(
            "schedule presence divergence at step {step}: replay={}, live={}",
            r.is_some(),
            l.is_some()
        ),
    }
}

/// Distinct WAL path and failpoint scope per proptest case, so parallel
/// test threads never share state.
fn case_token() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0x6a6e6c); // "jnl"
    NEXT.fetch_add(1, Ordering::Relaxed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot compaction is invisible to recovery: a journal that
    /// compacts aggressively (snapshot + delta) replays bit-identically
    /// to an uncompacted full-history journal at every prefix — verdicts,
    /// anchors, offsets, and the oracle's judgement all included. A crash
    /// injected *inside* the snapshot step (failpoint `journal::snapshot`)
    /// must leave the old journal fully recoverable, and the WAL mirror
    /// must end up holding exactly the snapshot-plus-delta history.
    #[test]
    fn compacted_replay_matches_full_history_replay(
        seed in 0u64..10_000,
        n_ops in 4usize..12,
        snapshot_every in 1usize..4,
        crash_at in 0usize..12,
        edits in proptest::collection::vec(edit_spec(), 1..12),
    ) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use rsched_graph::failpoint::{self, FailAction};

        let design = random_constraint_graph(seed, &RandomGraphConfig {
            n_ops,
            ..RandomGraphConfig::default()
        })
        .to_text();
        let graph = ConstraintGraph::from_text(&design).expect("to_text round-trips");
        let mut live = Session::open(graph).expect("random designs are structurally sound");
        let token = case_token();
        let wal = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
            .join(format!("compact-{token}.wal"));
        let mut full = Journal::open("s", design.clone(), None);
        let mut compacted = Journal::open("s", design, Some(wal.clone()));
        compacted.set_snapshot_every(snapshot_every);
        let _scope = failpoint::enter_scope(token);
        for (i, spec) in edits.iter().enumerate() {
            if let Some(op) = apply_named(spec, &mut live) {
                full.append(op.clone());
                compacted.append(op);
                if i == crash_at {
                    // One-shot crash inside the snapshot step. The
                    // attempt may also be a deferral (guards not met);
                    // only an actual unwind consumes the guard.
                    let _guard = failpoint::arm(
                        "journal::snapshot",
                        Some(token),
                        FailAction::Panic,
                        0,
                        Some(1),
                    );
                    let before = (compacted.edits(), compacted.compactions());
                    let crashed =
                        catch_unwind(AssertUnwindSafe(|| compacted.maybe_compact(&live)))
                            .is_err();
                    if crashed {
                        // Nothing moved: same delta, same base.
                        prop_assert_eq!(
                            (compacted.edits(), compacted.compactions()),
                            before
                        );
                    }
                } else {
                    compacted.maybe_compact(&live);
                }
            }
            assert_replay_matches(&full, &live, i + 1);
            assert_replay_matches(&compacted, &live, i + 1);
        }
        // The WAL mirror holds exactly the compacted history: one base
        // line (open or snapshot) plus the delta, every line valid JSON.
        compacted.sync();
        let mirrored = std::fs::read_to_string(&wal).expect("wal mirror exists");
        let lines: Vec<&str> = mirrored.lines().filter(|l| !l.trim().is_empty()).collect();
        prop_assert_eq!(lines.len(), 1 + compacted.edits());
        for line in &lines {
            let record = rsched_engine::json::Json::parse(line)
                .unwrap_or_else(|e| panic!("bad wal line ({e}): {line}"));
            prop_assert!(record.get("op").is_some(), "wal line without op: {}", line);
        }
        let base = rsched_engine::json::Json::parse(lines[0]).expect("parsed above");
        let base_op = base.get("op").and_then(rsched_engine::json::Json::as_str);
        if compacted.snapshotted() {
            prop_assert_eq!(base_op, Some("snapshot"));
        } else {
            prop_assert_eq!(base_op, Some("open"));
        }
        let _ = std::fs::remove_file(&wal);
    }

    /// Random designs, random accepted-edit histories: journal replay is
    /// indistinguishable from the live session at every prefix.
    #[test]
    fn replay_matches_live_at_every_prefix(
        seed in 0u64..10_000,
        n_ops in 4usize..16,
        edits in proptest::collection::vec(edit_spec(), 1..10),
    ) {
        let design = random_constraint_graph(seed, &RandomGraphConfig {
            n_ops,
            ..RandomGraphConfig::default()
        })
        .to_text();
        let graph = ConstraintGraph::from_text(&design).expect("to_text round-trips");
        let mut live = Session::open(graph).expect("random designs are structurally sound");
        let mut journal = Journal::open("s", design, None);
        assert_replay_matches(&journal, &live, 0);
        for (i, spec) in edits.iter().enumerate() {
            if let Some(op) = apply_named(spec, &mut live) {
                journal.append(op);
            }
            assert_replay_matches(&journal, &live, i + 1);
        }
        prop_assert!(journal.edits() <= edits.len());
    }
}
