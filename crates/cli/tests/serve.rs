//! End-to-end tests of the `rsched` binary: the `serve` JSON-lines
//! service over real pipes, plus `help` / usage exit behavior.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_rsched");

const DESIGN: &str =
    "op sync unbounded\\nop alu 2\\nop out 1\\ndep sync alu\\ndep alu out\\nmax alu out 4\\n";

fn run_serve(stdin_payload: &str, extra_args: &[&str]) -> Output {
    let mut child = Command::new(BIN)
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rsched serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin_payload.as_bytes())
        .expect("write requests");
    // Dropping stdin closes the pipe: EOF must shut the service down.
    child.wait_with_output().expect("collect output")
}

fn stdout_lines(output: &Output) -> Vec<String> {
    String::from_utf8(output.stdout.clone())
        .expect("utf-8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn serve_round_trip_over_stdio() {
    let requests = format!(
        concat!(
            r#"{{"id":1,"session":"s","op":"open","design":"{design}"}}"#,
            "\n",
            r#"{{"id":2,"session":"s","op":"edit","kind":"add_min","from":"alu","to":"out","value":3}}"#,
            "\n",
            r#"{{"id":3,"session":"s","op":"schedule"}}"#,
            "\n",
            r#"{{"id":4,"session":"s","op":"close"}}"#,
            "\n"
        ),
        design = DESIGN
    );
    let output = run_serve(&requests, &[]);
    assert!(output.status.success(), "clean EOF shutdown exits 0");
    let lines = stdout_lines(&output);
    assert_eq!(lines.len(), 4, "one response per request: {lines:?}");
    assert!(lines[0].contains(r#""id":1"#) && lines[0].contains(r#""ok":true"#));
    assert!(lines[0].contains(r#""verdict":"well-posed""#));
    assert!(lines[1].contains(r#""outcome":"rescheduled""#));
    // The min constraint pushes `out` to 3 cycles after `sync`.
    assert!(
        lines[2].contains(r#""out":{"source":3,"sync":3}"#),
        "schedule response carries offsets: {}",
        lines[2]
    );
    assert!(lines[3].contains(r#""closed":true"#));
}

#[test]
fn serve_honors_request_deadlines() {
    let requests = format!(
        concat!(
            r#"{{"id":1,"session":"s","op":"open","design":"{design}"}}"#,
            "\n",
            r#"{{"id":2,"session":"s","op":"schedule","deadline_ms":0}}"#,
            "\n",
            r#"{{"id":3,"session":"s","op":"schedule"}}"#,
            "\n"
        ),
        design = DESIGN
    );
    let output = run_serve(&requests, &["--workers", "1"]);
    assert!(output.status.success());
    let lines = stdout_lines(&output);
    let expired = lines
        .iter()
        .find(|l| l.contains(r#""id":2"#))
        .expect("response for the expired request");
    assert!(expired.contains(r#""ok":false"#) && expired.contains("deadline"));
    let after = lines
        .iter()
        .find(|l| l.contains(r#""id":3"#))
        .expect("response after the expired request");
    assert!(after.contains(r#""ok":true"#), "later requests still run");
}

#[test]
fn serve_answers_malformed_lines_in_band() {
    let output = run_serve("{definitely not json\n", &[]);
    assert!(output.status.success(), "bad requests are not fatal");
    let lines = stdout_lines(&output);
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains(r#""ok":false"#) && lines[0].contains("malformed"));
}

#[test]
fn help_exits_zero_and_lists_serve() {
    for arg in ["help", "--help", "-h"] {
        let output = Command::new(BIN)
            .arg(arg)
            .output()
            .expect("run rsched help");
        assert!(output.status.success(), "'{arg}' must exit 0");
        let text = String::from_utf8(output.stdout).unwrap();
        assert!(text.contains("rsched serve"), "'{arg}' output lists serve");
        assert!(text.contains("rsched schedule"));
    }
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let output = Command::new(BIN)
        .arg("frobnicate")
        .output()
        .expect("run rsched frobnicate");
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("unknown command 'frobnicate'"));
    assert!(err.contains("rsched serve"), "usage on stderr lists serve");
}

#[test]
fn serve_rejects_bad_flags_before_reading_stdin() {
    let output = Command::new(BIN)
        .args(["serve", "--workers", "many"])
        .output()
        .expect("run rsched serve with a bad flag");
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("--workers expects a number"));
}
