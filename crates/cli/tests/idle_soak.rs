//! Idle-connection soak against the real `rsched serve --listen` binary:
//! a herd of silent connections must not cost threads (the readiness
//! runtime multiplexes them onto one event loop), must leave the server
//! responsive, and must all be told `going_away` when SIGTERM drains it.
//!
//! The herd is 256 connections by default; set `RSCHED_SOAK=1` for the
//! full 10,000-connection soak (needs an fd limit comfortably above
//! 2×10k across this process and the server it spawns).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_rsched");

const DESIGN: &str =
    "op sync unbounded\\nop alu 2\\nop out 1\\ndep sync alu\\ndep alu out\\nmax alu out 4\\n";

struct Server {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: std::net::SocketAddr,
}

impl Server {
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Command::new(BIN)
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn rsched serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .parse()
            .expect("banner carries the resolved address");
        Server {
            child,
            stdout,
            addr,
        }
    }

    fn threads(&self) -> usize {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .expect("read /proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line")
            .trim()
            .parse()
            .expect("thread count")
    }

    fn sigterm(&self) {
        let done = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(done.success(), "kill -TERM failed");
    }

    /// Waits for exit and returns the rest of stdout (the serve summary).
    fn wait(mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    break;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "server did not exit within 60s of SIGTERM"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let mut tail = String::new();
        self.stdout.read_to_string(&mut tail).expect("read summary");
        tail
    }
}

fn connect(addr: &std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream
}

fn round_trip(stream: &mut TcpStream, line: &str) -> String {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("read");
    assert!(n > 0, "server closed before answering {line:?}");
    response.trim_end().to_owned()
}

fn herd_size() -> usize {
    if std::env::var("RSCHED_SOAK").is_ok_and(|v| v == "1") {
        10_000
    } else {
        256
    }
}

#[test]
fn idle_herd_costs_no_threads_and_drains_on_sigterm() {
    let herd = herd_size();
    let workers = 2;
    let server = Server::spawn(&["--workers", "2", "--drain-timeout-ms", "30000"]);
    let baseline = server.threads();

    // Park the herd: connect, say nothing, hold the socket open.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(herd);
    for _ in 0..herd {
        idle.push(connect(&server.addr));
    }

    // Readiness runtime, not thread-per-connection: the herd adds zero
    // threads (a tiny allowance covers shard-respawn churn).
    let with_herd = server.threads();
    assert!(
        with_herd <= baseline + 2,
        "{herd} idle connections grew the thread count {baseline} -> {with_herd}"
    );
    assert!(
        with_herd <= workers + 6,
        "thread count {with_herd} is not bounded by the worker pool"
    );

    // The server still answers promptly with the herd parked.
    let mut active = connect(&server.addr);
    let open = round_trip(
        &mut active,
        &format!("{{\"id\":1,\"op\":\"open\",\"session\":\"soak\",\"design\":\"{DESIGN}\"}}"),
    );
    assert!(open.contains("\"ok\":true"), "open failed: {open}");
    let sched = round_trip(
        &mut active,
        "{\"id\":2,\"op\":\"schedule\",\"session\":\"soak\"}",
    );
    assert!(sched.contains("\"ok\":true"), "schedule failed: {sched}");

    // SIGTERM drains: every parked connection gets exactly one
    // `going_away` line and EOF. Spot-check a sample (reading 10k sockets
    // serially is the test's cost, not the server's).
    server.sigterm();
    let step = (idle.len() / 64).max(1);
    for stream in idle.iter().step_by(step) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut tail = String::new();
        reader.read_to_string(&mut tail).expect("drain to EOF");
        assert_eq!(
            tail, "{\"id\":null,\"ok\":false,\"error\":\"going_away: server draining\"}\n",
            "parked connection saw exactly the drain notice"
        );
    }

    let summary = server.wait();
    let expected = format!("over {} connection(s)", herd + 1);
    assert!(
        summary.contains("served 2 request(s)") && summary.contains(&expected),
        "summary accounts for the whole herd: {summary:?}"
    );
    drop(idle);
}
