//! The `rsched` command-line driver.
//!
//! Operates on constraint graphs in the text format of
//! [`rsched_graph::ConstraintGraph::from_text`] (`.rsg` files by
//! convention) and on HardwareC sources (`.hc`):
//!
//! ```text
//! rsched check     <graph.rsg>                 feasibility + well-posedness
//! rsched schedule  <graph.rsg> [--ir] [--trace] [--threads N]  minimum relative schedule
//! rsched slack     <graph.rsg>                 ASAP/ALAP offsets + mobility
//! rsched explain   <graph.rsg>                 binding path behind every offset
//! rsched control   <graph.rsg> [--style counter|shift] [--ir]
//! rsched fsm       <graph.rsg>                 FSM/microcode controller (fixed-delay)
//! rsched simulate  <graph.rsg> [--seed N] [--max-delay N] [--gate] [--vcd]
//! rsched reduce    <graph.rsg>                 transitive-reduced graph text
//! rsched verilog   <graph.rsg> [--style counter|shift] [--ir] [--name M]
//! rsched dot       <graph.rsg>                 Graphviz output
//! rsched compile   <design.hc> [--vcd --seed N]  HardwareC -> schedules
//! rsched serve     [--stdio | --listen <ip:port|socket-path>]
//!                  [--workers N] [--deadline-ms N] [--queue-depth N]
//!                  [--max-ops N] [--max-edges N] [--journal-dir D]
//!                  [--snapshot-every N] [--cache-capacity N] [--threads N]
//!                  [--max-sessions N] [--max-inflight N]
//!                  [--idle-timeout-ms N] [--read-deadline-ms N]
//!                  [--drain-timeout-ms N]
//!                                               JSON-lines service (stdio or socket)
//! rsched fuzz      [--seed N] [--iters N] [--minimize] [--repro-dir D] [--faults] [--cache] [--chaos]  oracle-refereed fuzzing
//! rsched help                                  print usage
//! ```
//!
//! The library surface ([`run`]) takes the argument vector and returns
//! the rendered output, so every command is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;

use rsched_core::{
    check_well_posed, explain_offset, iteration_bound, make_well_posed, relative_slack, schedule,
    schedule_threaded, schedule_traced, IrredundantAnchors, WellPosedness,
};
use rsched_ctrl::{generate, ControlStyle, Fsm};
use rsched_graph::{ConstraintGraph, DotOptions};
use rsched_sim::{DelaySource, Simulator, Waveform};

/// A CLI failure: human-readable message plus a suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message for stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: format!("{}\n\n{USAGE}", message.into()),
            code: 2,
        }
    }

    fn failure(message: impl std::fmt::Display) -> Self {
        CliError {
            message: message.to_string(),
            code: 1,
        }
    }
}

const USAGE: &str = "usage:
  rsched check     <graph.rsg>
  rsched schedule  <graph.rsg> [--ir] [--trace] [--threads N]
  rsched slack     <graph.rsg>
  rsched optimize  <graph.rsg> [--max-rounds N] [--slack-threshold N]
                   [--budget N] [--style counter|shift] [--max-edges N]
  rsched explain   <graph.rsg>
  rsched control   <graph.rsg> [--style counter|shift] [--ir]
  rsched fsm       <graph.rsg>
  rsched simulate  <graph.rsg> [--seed N] [--max-delay N] [--gate] [--vcd]
  rsched reduce    <graph.rsg>
  rsched verilog   <graph.rsg> [--style counter|shift] [--ir] [--name M]
  rsched dot       <graph.rsg>
  rsched compile   <design.hc> [--vcd --seed N]
  rsched serve     [--stdio | --listen <ip:port|socket-path>]
                   [--workers N] [--deadline-ms N] [--queue-depth N]
                   [--max-ops N] [--max-edges N] [--journal-dir D]
                   [--snapshot-every N] [--cache-capacity N] [--threads N]
                   [--max-sessions N] [--max-inflight N]
                   [--idle-timeout-ms N] [--read-deadline-ms N]
                   [--drain-timeout-ms N]
  rsched fuzz      [--seed N] [--iters N] [--minimize] [--repro-dir D] [--faults] [--cache] [--optimize] [--chaos]
  rsched help";

/// Executes a CLI invocation (`args` excludes the program name) and
/// returns the stdout payload.
///
/// # Errors
///
/// Returns [`CliError`] for usage errors (exit code 2) and analysis
/// failures (exit code 1).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError::usage("missing command"))?;
    match command.as_str() {
        "help" | "--help" | "-h" => return Ok(format!("{USAGE}\n")),
        "serve" => {
            let flags: Vec<&String> = it.collect();
            let invocation = parse_serve_config(&flags)?;
            return match invocation.listen {
                Some(listen) => {
                    let mut net = rsched_net::NetConfig::new(listen);
                    net.engine = invocation.config;
                    net.max_sessions_per_conn = invocation.max_sessions;
                    net.max_inflight_per_conn = invocation.max_inflight;
                    net.idle_timeout = invocation.idle_timeout;
                    net.read_deadline = invocation.read_deadline;
                    net.drain_timeout = invocation.drain_timeout;
                    let mut server = rsched_net::NetServer::bind(net).map_err(CliError::failure)?;
                    // SIGTERM starts a graceful drain: stop accepting,
                    // answer in-flight requests, flush, then exit.
                    server.install_sigterm_drain();
                    // Banner on stdout before blocking, so scripts can
                    // scrape the resolved address (port 0 binds).
                    println!("listening on {}", server.local_addr());
                    let summary = server.run().map_err(CliError::failure)?;
                    Ok(format!(
                        "served {} request(s) over {} connection(s)\n",
                        summary.requests, summary.connections
                    ))
                }
                None => {
                    let stdin = std::io::stdin();
                    rsched_engine::serve(stdin.lock(), std::io::stdout(), &invocation.config)
                        .map_err(CliError::failure)?;
                    Ok(String::new())
                }
            };
        }
        "fuzz" => {
            let flags: Vec<&String> = it.collect();
            return fuzz_cmd(&flags);
        }
        _ => {}
    }
    if !matches!(
        command.as_str(),
        "check"
            | "schedule"
            | "slack"
            | "optimize"
            | "explain"
            | "control"
            | "fsm"
            | "simulate"
            | "reduce"
            | "verilog"
            | "dot"
            | "compile"
    ) {
        return Err(CliError::usage(format!("unknown command '{command}'")));
    }
    let path = it
        .next()
        .ok_or_else(|| CliError::usage(format!("'{command}' needs an input file")))?;
    let flags: Vec<&String> = it.collect();
    let source = fs::read_to_string(path)
        .map_err(|e| CliError::failure(format!("cannot read '{path}': {e}")))?;
    match command.as_str() {
        "check" => check_cmd(&source),
        "schedule" => schedule_cmd(&source, &flags),
        "slack" => slack_cmd(&source),
        "optimize" => optimize_cmd(&source, &flags),
        "explain" => explain_cmd(&source),
        "control" => control_cmd(&source, &flags),
        "fsm" => fsm_cmd(&source),
        "simulate" => simulate_cmd(&source, &flags),
        "reduce" => reduce_cmd(&source),
        "verilog" => verilog_cmd(&source, &flags),
        "dot" => dot_cmd(&source),
        "compile" => compile_cmd(&source, &flags),
        _ => unreachable!("validated above"),
    }
}

/// How `rsched serve` was asked to run: the engine config plus the
/// transport (stdio by default or with `--stdio`, a socket listener with
/// `--listen`) and the socket-only per-connection quotas.
#[derive(Debug)]
struct ServeInvocation {
    config: rsched_engine::ServeConfig,
    listen: Option<rsched_net::Listen>,
    max_sessions: Option<usize>,
    max_inflight: Option<usize>,
    idle_timeout: Option<std::time::Duration>,
    read_deadline: Option<std::time::Duration>,
    drain_timeout: Option<std::time::Duration>,
}

fn parse_serve_config(flags: &[&String]) -> Result<ServeInvocation, CliError> {
    let mut config = rsched_engine::ServeConfig::default();
    if let Some(v) = flag_value(flags, "--workers") {
        config.workers = v
            .parse()
            .map_err(|_| CliError::usage("--workers expects a number"))?;
    }
    if let Some(v) = flag_value(flags, "--deadline-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| CliError::usage("--deadline-ms expects a number"))?;
        config.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(v) = flag_value(flags, "--queue-depth") {
        config.queue_depth = v
            .parse()
            .map_err(|_| CliError::usage("--queue-depth expects a number"))?;
        if config.queue_depth == 0 {
            return Err(CliError::usage("--queue-depth must be at least 1"));
        }
    }
    if let Some(v) = flag_value(flags, "--max-ops") {
        config.max_ops = Some(
            v.parse()
                .map_err(|_| CliError::usage("--max-ops expects a number"))?,
        );
    }
    if let Some(v) = flag_value(flags, "--max-edges") {
        config.max_edges = Some(
            v.parse()
                .map_err(|_| CliError::usage("--max-edges expects a number"))?,
        );
    }
    if let Some(v) = flag_value(flags, "--journal-dir") {
        config.journal_dir = Some(std::path::PathBuf::from(v));
    }
    if let Some(v) = flag_value(flags, "--snapshot-every") {
        config.snapshot_every = v.parse().map_err(|_| {
            CliError::usage("--snapshot-every expects a number of edits (0 disables compaction)")
        })?;
    }
    if let Some(v) = flag_value(flags, "--cache-capacity") {
        config.cache_capacity = v.parse().map_err(|_| {
            CliError::usage("--cache-capacity expects a number of entries (0 disables the cache)")
        })?;
    }
    if let Some(v) = flag_value(flags, "--threads") {
        config.threads = v.parse().map_err(|_| {
            CliError::usage("--threads expects a pool size (0 sizes to the host's cores)")
        })?;
    }
    let listen = flag_value(flags, "--listen")
        .map(|v| rsched_net::Listen::parse(v).map_err(CliError::usage))
        .transpose()?;
    if listen.is_some() && has_flag(flags, "--stdio") {
        return Err(CliError::usage(
            "--listen and --stdio are mutually exclusive",
        ));
    }
    let quota = |name: &str| -> Result<Option<usize>, CliError> {
        flag_value(flags, name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError::usage(format!("{name} expects a number")))
            })
            .transpose()
    };
    let max_sessions = quota("--max-sessions")?;
    let max_inflight = quota("--max-inflight")?;
    let timeout = |name: &str| -> Result<Option<std::time::Duration>, CliError> {
        flag_value(flags, name)
            .map(|v| {
                v.parse::<u64>()
                    .map(std::time::Duration::from_millis)
                    .map_err(|_| CliError::usage(format!("{name} expects milliseconds")))
            })
            .transpose()
    };
    let idle_timeout = timeout("--idle-timeout-ms")?;
    let read_deadline = timeout("--read-deadline-ms")?;
    let drain_timeout = timeout("--drain-timeout-ms")?;
    if listen.is_none() {
        if max_sessions.is_some() {
            return Err(CliError::usage(
                "--max-sessions requires --listen (it is a per-connection quota)",
            ));
        }
        if max_inflight.is_some() {
            return Err(CliError::usage(
                "--max-inflight requires --listen (it is a per-connection quota)",
            ));
        }
        for (flag, value) in [
            ("--idle-timeout-ms", &idle_timeout),
            ("--read-deadline-ms", &read_deadline),
            ("--drain-timeout-ms", &drain_timeout),
        ] {
            if value.is_some() {
                return Err(CliError::usage(format!(
                    "{flag} requires --listen (it is a connection-lifecycle setting)"
                )));
            }
        }
    }
    // `--journal-dir` takes an arbitrary path, so stray detection walks
    // flag positions instead of pattern-matching every operand.
    let value_flags = [
        "--workers",
        "--deadline-ms",
        "--queue-depth",
        "--max-ops",
        "--max-edges",
        "--journal-dir",
        "--snapshot-every",
        "--cache-capacity",
        "--threads",
        "--listen",
        "--max-sessions",
        "--max-inflight",
        "--idle-timeout-ms",
        "--read-deadline-ms",
        "--drain-timeout-ms",
    ];
    let mut expect_value = false;
    for f in flags {
        if expect_value {
            expect_value = false;
            continue;
        }
        if value_flags.contains(&f.as_str()) {
            expect_value = true;
        } else if f.as_str() != "--stdio" {
            return Err(CliError::usage(format!("unknown serve flag '{f}'")));
        }
    }
    Ok(ServeInvocation {
        config,
        listen,
        max_sessions,
        max_inflight,
        idle_timeout,
        read_deadline,
        drain_timeout,
    })
}

fn parse_fuzz_config(flags: &[&String]) -> Result<rsched_oracle::FuzzConfig, CliError> {
    let mut config = rsched_oracle::FuzzConfig {
        minimize: has_flag(flags, "--minimize"),
        ..rsched_oracle::FuzzConfig::default()
    };
    if let Some(v) = flag_value(flags, "--seed") {
        config.seed = v
            .parse()
            .map_err(|_| CliError::usage("--seed expects a number"))?;
    }
    if let Some(v) = flag_value(flags, "--iters") {
        config.iters = v
            .parse()
            .map_err(|_| CliError::usage("--iters expects a number"))?;
    }
    if let Some(v) = flag_value(flags, "--repro-dir") {
        config.repro_dir = Some(std::path::PathBuf::from(v));
    }
    let known = [
        "--seed",
        "--iters",
        "--minimize",
        "--repro-dir",
        "--faults",
        "--cache",
        "--optimize",
        "--chaos",
    ];
    let mut expect_value = false;
    for f in flags {
        if expect_value {
            expect_value = false;
            continue;
        }
        match f.as_str() {
            "--minimize" | "--faults" | "--cache" | "--optimize" | "--chaos" => {}
            "--seed" | "--iters" | "--repro-dir" => expect_value = true,
            other if !known.contains(&other) => {
                return Err(CliError::usage(format!("unknown fuzz flag '{other}'")));
            }
            _ => {}
        }
    }
    Ok(config)
}

/// Runs the oracle-refereed structured fuzzer, the serve-protocol
/// adversarial harness, and the socket-parity harness (live TCP server
/// vs stdio); any violation is an exit-code-1 failure carrying
/// the full report (with repro paths when `--repro-dir` is set). With
/// `--faults`, additionally interleaves deterministic failpoint faults
/// (panics, worker kills, stalls, injected errors) with edit scripts and
/// asserts recovery is bit-identical to a cold rebuild. With `--chaos`,
/// runs only socket-level fault injection (torn writes, RST aborts,
/// half-closes, hostile bytes, slow-loris) against the live server.
fn fuzz_cmd(flags: &[&String]) -> Result<String, CliError> {
    let config = parse_fuzz_config(flags)?;
    if has_flag(flags, "--cache") {
        // Cache-only mode: the full iteration budget goes to the cache
        // differential (CI's dedicated cache-fuzz job uses this).
        let cache_report = rsched_oracle::fuzz_cache(&rsched_oracle::CacheFuzzConfig {
            seed: config.seed,
            iters: config.iters.max(10),
            rounds: (config.iters / 100).clamp(1, 8),
            repro_dir: config.repro_dir.clone(),
            ..rsched_oracle::CacheFuzzConfig::default()
        });
        let rendered = format!("cache fuzz (seed {}):\n{cache_report}", config.seed);
        return if cache_report.is_ok() {
            Ok(rendered)
        } else {
            Err(CliError::failure(rendered))
        };
    }
    if has_flag(flags, "--chaos") {
        // Chaos-only mode: socket-level fault injection against the live
        // server (CI's chaos-smoke job uses this). One "iter" is one
        // hostile connection; each round also boots an undisturbed
        // control server for the sibling bit-identity check.
        let chaos_config = rsched_oracle::ChaosFuzzConfig {
            seed: config.seed,
            rounds: (config.iters / 25).clamp(1, 16),
            chaos_conns: 6,
            ..rsched_oracle::ChaosFuzzConfig::default()
        };
        let chaos_report = rsched_oracle::fuzz_chaos(&chaos_config);
        let rendered = format!("chaos fuzz (seed {}):\n{chaos_report}", config.seed);
        return if chaos_report.is_ok() {
            Ok(rendered)
        } else {
            // Chaos rounds replay from the seed alone; persist the report
            // plus the exact replay command so the CI artifact is
            // self-describing.
            if let Some(dir) = &config.repro_dir {
                let _ = std::fs::create_dir_all(dir);
                let body = format!(
                    "{rendered}\nreplay: rsched fuzz --chaos --seed {} --iters {}\n",
                    config.seed, config.iters
                );
                let _ = std::fs::write(dir.join("chaos-failures.txt"), body);
            }
            Err(CliError::failure(rendered))
        };
    }
    if has_flag(flags, "--optimize") {
        // Optimize-only mode: the full iteration budget drives random
        // budgets/thresholds through the optimize loop (CI's dedicated
        // optimize-smoke job uses this).
        let optimize_report = rsched_oracle::fuzz_optimize(&rsched_oracle::OptimizeFuzzConfig {
            seed: config.seed,
            iters: config.iters.max(10),
            repro_dir: config.repro_dir.clone(),
            ..rsched_oracle::OptimizeFuzzConfig::default()
        });
        let rendered = format!("optimize fuzz (seed {}):\n{optimize_report}", config.seed);
        return if optimize_report.is_ok() {
            Ok(rendered)
        } else {
            Err(CliError::failure(rendered))
        };
    }
    let report = rsched_oracle::fuzz(&config);
    let serve_report = rsched_oracle::fuzz_serve(&rsched_oracle::ServeFuzzConfig {
        seed: config.seed,
        rounds: (config.iters / 25).clamp(2, 40),
        frames_per_round: 40,
    });
    let net_report = rsched_oracle::fuzz_net(&rsched_oracle::NetFuzzConfig {
        seed: config.seed,
        rounds: (config.iters / 50).clamp(1, 8),
        ..rsched_oracle::NetFuzzConfig::default()
    });
    let cache_report = rsched_oracle::fuzz_cache(&rsched_oracle::CacheFuzzConfig {
        seed: config.seed,
        iters: (config.iters / 2).max(10),
        rounds: (config.iters / 50).clamp(1, 4),
        repro_dir: config.repro_dir.clone(),
        ..rsched_oracle::CacheFuzzConfig::default()
    });
    let mut rendered = format!(
        "graph fuzz (seed {}):\n{report}\nserve fuzz:\n{serve_report}net fuzz:\n{net_report}cache fuzz:\n{cache_report}",
        config.seed
    );
    let mut ok =
        report.is_ok() && serve_report.is_ok() && net_report.is_ok() && cache_report.is_ok();
    if has_flag(flags, "--faults") {
        let fault_report = rsched_oracle::fuzz_faults(&rsched_oracle::FaultFuzzConfig {
            seed: config.seed,
            rounds: (config.iters / 4).max(1),
            repro_dir: config.repro_dir.clone(),
        });
        let _ = write!(rendered, "fault fuzz:\n{fault_report}");
        ok = ok && fault_report.is_ok();
    }
    if ok {
        Ok(rendered)
    } else {
        Err(CliError::failure(rendered))
    }
}

fn load_graph(source: &str) -> Result<ConstraintGraph, CliError> {
    ConstraintGraph::from_text(source).map_err(CliError::failure)
}

fn flag_value<'a>(flags: &'a [&String], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .position(|f| *f == name)
        .and_then(|i| flags.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(flags: &[&String], name: &str) -> bool {
    flags.iter().any(|f| *f == name)
}

fn check_cmd(source: &str) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} vertices, {} edges ({} backward), {} anchors",
        g.n_vertices(),
        g.n_edges(),
        g.n_backward_edges(),
        g.n_anchors()
    );
    match check_well_posed(&g).map_err(CliError::failure)? {
        WellPosedness::WellPosed => {
            let bound = iteration_bound(&g).map_err(CliError::failure)?;
            let _ = writeln!(
                out,
                "well-posed; scheduling converges within {} iteration(s) (L = {})",
                bound.max_iterations(),
                bound.l
            );
        }
        WellPosedness::Unfeasible { witness } => {
            let _ = writeln!(out, "UNFEASIBLE: positive cycle through {witness}");
        }
        WellPosedness::IllPosed { violations } => {
            let _ = writeln!(out, "ILL-POSED ({} constraint(s)):", violations.len());
            for v in violations {
                let _ = writeln!(
                    out,
                    "  backward edge {} -> {}: anchors {:?} gate the tail but not the head",
                    g.vertex(v.from).name(),
                    g.vertex(v.to).name(),
                    v.missing
                        .iter()
                        .map(|&a| g.vertex(a).name().to_owned())
                        .collect::<Vec<_>>()
                );
            }
            let mut repaired = g.clone();
            match make_well_posed(&mut repaired) {
                Ok(report) => {
                    let _ = writeln!(out, "repairable by {} serialization edge(s):", report.len());
                    for (a, v) in &report.added {
                        let _ = writeln!(
                            out,
                            "  add dep {} -> {}",
                            repaired.vertex(*a).name(),
                            repaired.vertex(*v).name()
                        );
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "NOT repairable: {e}");
                }
            }
        }
    }
    Ok(out)
}

fn schedule_cmd(source: &str, flags: &[&String]) -> Result<String, CliError> {
    let g = load_graph(source)?;
    // Worker threads fanned over anchor columns; any count yields
    // bit-identical offsets, iteration counts, and verdicts.
    let threads: usize = flag_value(flags, "--threads")
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::usage("--threads expects a number"))
        })
        .transpose()?
        .unwrap_or(1);
    let mut out = String::new();
    if has_flag(flags, "--trace") {
        let trace = schedule_traced(&g).map_err(CliError::failure)?;
        for (i, it) in trace.iterations.iter().enumerate() {
            let _ = writeln!(
                out,
                "iteration {}: {} violated backward edge(s)",
                i + 1,
                it.violations.len()
            );
        }
    }
    let omega = schedule_threaded(&g, threads.max(1)).map_err(CliError::failure)?;
    let omega = if has_flag(flags, "--ir") {
        let analysis = IrredundantAnchors::analyze(&g).map_err(CliError::failure)?;
        omega.restrict(analysis.irredundant.family())
    } else {
        omega
    };
    let _ = writeln!(
        out,
        "minimum relative schedule ({} iteration(s)):",
        omega.iterations()
    );
    for v in g.vertex_ids() {
        let offs: Vec<String> = omega
            .offsets_of(v)
            .map(|(a, o)| format!("σ_{}={o}", g.vertex(a).name()))
            .collect();
        let _ = writeln!(out, "  {:<16} [{}]", g.vertex(v).name(), offs.join(", "));
    }
    let _ = writeln!(
        out,
        "sum of max offsets: {} (control-cost proxy)",
        omega.sum_of_max_offsets()
    );
    Ok(out)
}

fn slack_cmd(source: &str) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let omega = schedule(&g).map_err(CliError::failure)?;
    let slack = relative_slack(&g, &omega).map_err(CliError::failure)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "relative slack (σ_min / σ_alap / mobility per anchor):"
    );
    for v in g.vertex_ids() {
        let cells: Vec<String> = slack
            .anchors()
            .iter()
            .filter_map(|&a| {
                let (asap, alap, sl) = (slack.asap(v, a)?, slack.alap(v, a)?, slack.slack(v, a)?);
                Some(format!("{}:{}/{}/{}", g.vertex(a).name(), asap, alap, sl))
            })
            .collect();
        if cells.is_empty() {
            continue;
        }
        let marker = if slack.is_critical(v) {
            " *critical*"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:<16} {}{}",
            g.vertex(v).name(),
            cells.join("  "),
            marker
        );
    }
    Ok(out)
}

/// `rsched optimize` — the feedback-guided scheduler ⇄ binding loop
/// (DESIGN.md §15). Every accepted round is oracle-refereed before the
/// next one runs: the CLI is the referee the engine cannot be (the
/// oracle depends on the engine).
fn optimize_cmd(source: &str, flags: &[&String]) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let num = |name: &str, default: i64| -> Result<i64, CliError> {
        flag_value(flags, name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError::usage(format!("{name} expects a number")))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let style = match flag_value(flags, "--style") {
        None | Some("counter") => rsched_engine::optimize::ControlStyle::Counter,
        Some("shift") => rsched_engine::optimize::ControlStyle::ShiftRegister,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown style '{other}' (expected counter|shift)"
            )))
        }
    };
    let max_rounds = num("--max-rounds", 8)?;
    let slack_threshold = num("--slack-threshold", 0)?;
    let budget = num("--budget", 1)?;
    if max_rounds < 1 || budget < 1 || slack_threshold < 0 {
        return Err(CliError::usage(
            "--max-rounds and --budget must be >= 1, --slack-threshold >= 0",
        ));
    }
    let max_edges = flag_value(flags, "--max-edges")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError::usage("--max-edges expects a number"))
        })
        .transpose()?;
    let config = rsched_engine::OptimizeConfig {
        max_rounds: max_rounds as usize,
        slack_threshold,
        budget: budget as usize,
        style,
        max_edges,
        ..rsched_engine::OptimizeConfig::default()
    };

    let session = rsched_engine::Session::open(g).map_err(CliError::failure)?;
    let mut optimizer =
        rsched_engine::Optimizer::new(session, config.clone()).map_err(CliError::failure)?;
    let mut out = String::new();
    loop {
        let round = match optimizer.step() {
            Ok(Some(r)) => r.clone(),
            Ok(None) => break,
            Err(e) => return Err(CliError::failure(e)),
        };
        let _ = writeln!(
            out,
            "round {}: region {} op(s), {} edge(s) {}; {} -> {}",
            round.round,
            round.region_ops,
            round.applied_edges.len(),
            if round.accepted {
                "accepted"
            } else {
                "reverted"
            },
            round.before,
            round.after,
        );
        if round.accepted {
            // Referee the accepted state before taking another step.
            let s = optimizer.session();
            let omega = s.schedule().expect("accepted round is scheduled");
            let report = rsched_oracle::verify(s.graph(), omega);
            if let Some((label, witness)) = report.first_violation() {
                return Err(CliError::failure(format!(
                    "oracle refuted accepted round {}: {label}: {witness}",
                    round.round
                )));
            }
            let _ = writeln!(out, "  oracle: accepted state re-proven");
        }
    }
    let report = optimizer.report();
    let _ = writeln!(
        out,
        "optimize: {} round(s), {} accepted, {}",
        report.rounds.len(),
        report.accepted_rounds,
        if report.edge_budget_exhausted {
            "stopped at --max-edges"
        } else if report.converged {
            "converged"
        } else {
            "stopped at --max-rounds"
        }
    );
    let points = |label: &str, pts: &[(u64, u64)], o: &mut String| {
        let rendered: Vec<String> = pts.iter().map(|(l, c)| format!("({l}, {c})")).collect();
        let _ = writeln!(o, "{label}: {}", rendered.join(" "));
    };
    points(
        "explored (latency, control)",
        &report.explored_points(),
        &mut out,
    );
    points("pareto", &report.pareto_points(), &mut out);
    let _ = writeln!(out, "final: {}", report.final_objective);
    Ok(out)
}

fn explain_cmd(source: &str) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let omega = schedule(&g).map_err(CliError::failure)?;
    let mut out = String::new();
    for v in g.vertex_ids() {
        for &a in omega.anchors() {
            if let Some(ex) = explain_offset(&g, &omega, v, a).map_err(CliError::failure)? {
                let _ = writeln!(out, "{}", ex.render(&g));
            }
        }
    }
    Ok(out)
}

fn fsm_cmd(source: &str) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let omega = schedule(&g).map_err(CliError::failure)?;
    let fsm = Fsm::from_schedule(&g, &omega).map_err(CliError::failure)?;
    Ok(fsm.describe(&g))
}

fn control_cmd(source: &str, flags: &[&String]) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let style = match flag_value(flags, "--style") {
        None | Some("shift") => ControlStyle::ShiftRegister,
        Some("counter") => ControlStyle::Counter,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown style '{other}' (expected counter|shift)"
            )))
        }
    };
    let omega = schedule(&g).map_err(CliError::failure)?;
    let omega = if has_flag(flags, "--ir") {
        let analysis = IrredundantAnchors::analyze(&g).map_err(CliError::failure)?;
        omega.restrict(analysis.irredundant.family())
    } else {
        omega
    };
    let unit = generate(&g, &omega, style);
    Ok(format!("{}cost: {}\n", unit.describe(), unit.cost()))
}

fn simulate_cmd(source: &str, flags: &[&String]) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let seed: u64 = flag_value(flags, "--seed")
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::usage("--seed expects a number"))
        })
        .transpose()?
        .unwrap_or(0);
    let max_delay: u64 = flag_value(flags, "--max-delay")
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::usage("--max-delay expects a number"))
        })
        .transpose()?
        .unwrap_or(8);
    let omega = schedule(&g).map_err(CliError::failure)?;
    let unit = generate(&g, &omega, ControlStyle::ShiftRegister);
    let sim = Simulator::new(&g, &unit);
    let source_cfg = DelaySource::random(seed, max_delay);
    let report = if has_flag(flags, "--gate") {
        sim.run_gate_level(&source_cfg).map_err(CliError::failure)?
    } else {
        sim.run(&source_cfg).map_err(CliError::failure)?
    };
    if has_flag(flags, "--vcd") {
        return Ok(rsched_sim::to_vcd(&g, &report));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} cycles; {} violation(s); analytic match: {}",
        report.total_cycles,
        report.violations.len(),
        report.matches_analytic
    );
    let _ = write!(out, "{}", Waveform::from_report(&g, &report).render());
    Ok(out)
}

fn reduce_cmd(source: &str) -> Result<String, CliError> {
    let mut g = load_graph(source)?;
    let report = g.reduce_sequencing_edges();
    let mut out = format!(
        "# removed {} of {} sequencing edges
",
        report.removed, report.examined
    );
    out.push_str(&g.to_text());
    Ok(out)
}

fn verilog_cmd(source: &str, flags: &[&String]) -> Result<String, CliError> {
    let g = load_graph(source)?;
    let style = match flag_value(flags, "--style") {
        None | Some("shift") => ControlStyle::ShiftRegister,
        Some("counter") => ControlStyle::Counter,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown style '{other}' (expected counter|shift)"
            )))
        }
    };
    let omega = schedule(&g).map_err(CliError::failure)?;
    let omega = if has_flag(flags, "--ir") {
        let analysis = IrredundantAnchors::analyze(&g).map_err(CliError::failure)?;
        omega.restrict(analysis.irredundant.family())
    } else {
        omega
    };
    let synth = rsched_ctrl::synthesize(&generate(&g, &omega, style));
    let name = flag_value(flags, "--name").unwrap_or("control");
    Ok(synth.to_verilog(name))
}

fn dot_cmd(source: &str) -> Result<String, CliError> {
    let g = load_graph(source)?;
    Ok(g.to_dot(&DotOptions::default()))
}

fn compile_cmd(source: &str, flags: &[&String]) -> Result<String, CliError> {
    let compiled = rsched_hdl::compile(source).map_err(CliError::failure)?;
    let scheduled = rsched_sgraph::schedule_design(&compiled.design).map_err(CliError::failure)?;
    if has_flag(flags, "--vcd") {
        let seed: u64 = flag_value(flags, "--seed")
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError::usage("--seed expects a number"))
            })
            .transpose()?
            .unwrap_or(0);
        let act = rsched_sim::run_hierarchical(
            &compiled.design,
            &scheduled,
            &rsched_sim::HierConfig {
                seed,
                ..Default::default()
            },
        )
        .map_err(CliError::failure)?;
        return Ok(rsched_sim::hier_to_vcd(&compiled.design, &scheduled, &act));
    }
    let mut out = String::new();
    let stats = scheduled.anchor_stats();
    let _ = writeln!(
        out,
        "{} sequencing graph(s); |A| = {}, |V| = {}; Σ|A(v)| = {} -> Σ|IR(v)| = {}",
        stats.n_graphs,
        stats.n_anchors,
        stats.n_vertices,
        stats.total_full,
        stats.total_irredundant
    );
    let _ = writeln!(out, "\n{}", scheduled.report("design"));
    for gs in scheduled.graph_schedules() {
        let _ = writeln!(
            out,
            "\ngraph '{}' (latency {}):",
            gs.name,
            match gs.latency {
                rsched_graph::ExecDelay::Fixed(l) => l.to_string(),
                rsched_graph::ExecDelay::Unbounded => "unbounded".to_owned(),
            }
        );
        for v in gs.lowered.graph.vertex_ids() {
            let offs: Vec<String> = gs
                .schedule_ir
                .offsets_of(v)
                .map(|(a, o)| format!("σ_{}={o}", gs.lowered.graph.vertex(a).name()))
                .collect();
            let _ = writeln!(
                out,
                "  {:<16} [{}]",
                gs.lowered.graph.vertex(v).name(),
                offs.join(", ")
            );
        }
        if !gs.serialization.is_empty() {
            let _ = writeln!(
                out,
                "  ({} serialization edge(s) added)",
                gs.serialization.len()
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("rsched_cli_test_{name}_{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    const GRAPH: &str = "
op sync unbounded
op alu 2
op out 1
dep sync alu
dep alu out
max alu out 4
";

    fn run_args(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn check_reports_well_posed() {
        let p = write_temp("check", GRAPH);
        let out = run_args(&["check", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("well-posed"));
        assert!(out.contains("anchors"));
    }

    #[test]
    fn check_reports_repairable_ill_posedness() {
        let ill = "
op a1 unbounded
op a2 unbounded
op vi 1
op vj 1
dep a1 vi
dep a2 vj
max vi vj 4
";
        let p = write_temp("illposed", ill);
        let out = run_args(&["check", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("ILL-POSED"));
        assert!(out.contains("repairable by 1 serialization edge(s)"));
        assert!(out.contains("add dep a2 -> vi"));
    }

    #[test]
    fn schedule_prints_offsets_and_trace() {
        let p = write_temp("sched", GRAPH);
        let out = run_args(&["schedule", p.to_str().unwrap(), "--trace"]).unwrap();
        assert!(out.contains("minimum relative schedule"));
        assert!(out.contains("σ_sync=2")); // `out` starts 2 after sync
        let ir = run_args(&["schedule", p.to_str().unwrap(), "--ir"]).unwrap();
        assert!(ir.contains("σ_sync"));
    }

    #[test]
    fn schedule_threads_flag_is_bit_identical() {
        let p = write_temp("sched_threads", GRAPH);
        let single = run_args(&["schedule", p.to_str().unwrap()]).unwrap();
        let fanned = run_args(&["schedule", p.to_str().unwrap(), "--threads", "4"]).unwrap();
        assert_eq!(single, fanned);
        let err = run_args(&["schedule", p.to_str().unwrap(), "--threads", "x"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn control_styles_render() {
        let p = write_temp("ctrl", GRAPH);
        let sr = run_args(&["control", p.to_str().unwrap()]).unwrap();
        assert!(sr.contains("shift-register-based"));
        let ctr = run_args(&["control", p.to_str().unwrap(), "--style", "counter"]).unwrap();
        assert!(ctr.contains("counter-based"));
        let err = run_args(&["control", p.to_str().unwrap(), "--style", "magic"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn simulate_renders_waveform() {
        let p = write_temp("sim", GRAPH);
        let out = run_args(&["simulate", p.to_str().unwrap(), "--seed", "3"]).unwrap();
        assert!(out.contains("0 violation(s)"));
        assert!(out.contains("analytic match: true"));
        assert!(out.contains('#'));
    }

    #[test]
    fn dot_renders() {
        let p = write_temp("dot", GRAPH);
        let out = run_args(&["dot", p.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn compile_runs_hdl_pipeline() {
        let hc = "
process demo (req, ack)
    in port req;
    out port ack;
    boolean t;
{
    t = read(req);
    write ack = t;
}
";
        let p = write_temp("hc", hc);
        let out = run_args(&["compile", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("1 sequencing graph(s)"));
        assert!(out.contains("demo"));
    }

    #[test]
    fn slack_marks_critical_path() {
        let p = write_temp("slack", GRAPH);
        let out = run_args(&["slack", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("*critical*"));
        assert!(out.contains("sync:"));
    }

    #[test]
    fn fsm_requires_fixed_delay_design() {
        let p = write_temp("fsm_bad", GRAPH);
        let err = run_args(&["fsm", p.to_str().unwrap()]).unwrap_err();
        assert!(err.message.contains("unbounded"));
        let fixed = "op a 2\nop b 1\ndep a b\n";
        let p = write_temp("fsm_ok", fixed);
        let out = run_args(&["fsm", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("FSM controller"));
        assert!(out.contains("state   0"));
    }

    #[test]
    fn gate_level_simulation_flag() {
        let p = write_temp("simgate", GRAPH);
        let behavioural = run_args(&["simulate", p.to_str().unwrap(), "--seed", "5"]).unwrap();
        let gate = run_args(&["simulate", p.to_str().unwrap(), "--seed", "5", "--gate"]).unwrap();
        assert_eq!(behavioural, gate, "gate-level must match behavioural");
    }

    #[test]
    fn explain_lists_binding_paths() {
        let p = write_temp("explain", GRAPH);
        let out = run_args(&["explain", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("σ_sync(out) = 2"));
        assert!(out.contains("-("));
    }

    #[test]
    fn verilog_emission() {
        let p = write_temp("verilog", GRAPH);
        let out = run_args(&["verilog", p.to_str().unwrap(), "--name", "demo_ctl"]).unwrap();
        assert!(out.starts_with("module demo_ctl ("));
        assert!(out.contains("endmodule"));
        assert!(out.contains("done_"));
    }

    #[test]
    fn reduce_drops_redundant_edges() {
        let redundant = "
op a 1
op b 2
op c 1
dep a b
dep b c
dep a c
";
        let p = write_temp("reduce", redundant);
        let out = run_args(&["reduce", p.to_str().unwrap()]).unwrap();
        assert!(out.contains("# removed 1 of"));
        // Re-parse the emitted text: still a valid graph.
        let g = rsched_graph::ConstraintGraph::from_text(
            out.lines().skip(1).collect::<Vec<_>>().join("\n").as_str(),
        )
        .unwrap();
        assert!(g.is_polar());
    }

    #[test]
    fn vcd_flag_emits_vcd() {
        let p = write_temp("vcd", GRAPH);
        let out = run_args(&["simulate", p.to_str().unwrap(), "--vcd"]).unwrap();
        assert!(out.starts_with("$date"));
        assert!(out.contains("$enddefinitions $end"));
    }

    #[test]
    fn compile_vcd_emits_hierarchical_waveform() {
        let hc = "
process demo (req, ack)
    in port req;
    out port ack;
    boolean t;
{
    while (req) ;
    t = 1;
    write ack = t;
}
";
        let p = write_temp("hcvcd", hc);
        let out = run_args(&["compile", p.to_str().unwrap(), "--vcd", "--seed", "2"]).unwrap();
        assert!(out.contains("hierarchical"));
        assert!(out.contains("run_demo."));
        assert!(out.contains("$enddefinitions $end"));
    }

    #[test]
    fn usage_errors() {
        assert_eq!(run_args(&[]).unwrap_err().code, 2);
        assert_eq!(run_args(&["frobnicate", "x"]).unwrap_err().code, 2);
        assert_eq!(run_args(&["check"]).unwrap_err().code, 2);
        let err = run_args(&["check", "/nonexistent/path.rsg"]).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn help_lists_every_subcommand() {
        for invocation in ["help", "--help", "-h"] {
            let out = run_args(&[invocation]).unwrap();
            for cmd in [
                "check", "schedule", "slack", "optimize", "explain", "control", "fsm", "simulate",
                "reduce", "verilog", "dot", "compile", "serve", "fuzz", "help",
            ] {
                assert!(out.contains(cmd), "'{invocation}' output misses '{cmd}'");
            }
            for flag in [
                "--listen",
                "--stdio",
                "--snapshot-every",
                "--cache-capacity",
                "--max-sessions",
            ] {
                assert!(out.contains(flag), "'{invocation}' output misses '{flag}'");
            }
        }
    }

    #[test]
    fn unknown_command_error_includes_usage() {
        let err = run_args(&["frobnicate", "x"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown command 'frobnicate'"));
        assert!(
            err.message.contains("rsched serve"),
            "usage must list serve"
        );
    }

    fn parse_serve(args: &[&str]) -> Result<ServeInvocation, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let flags: Vec<&String> = owned.iter().collect();
        parse_serve_config(&flags)
    }

    #[test]
    fn serve_flag_parsing() {
        let inv = parse_serve(&[]).unwrap();
        assert_eq!(inv.config.workers, 4);
        assert_eq!(inv.config.snapshot_every, 256);
        assert_eq!(inv.listen, None);
        let inv = parse_serve(&["--workers", "2"]).unwrap();
        assert_eq!(inv.config.workers, 2);
        assert_eq!(inv.config.deadline, None);
        let inv = parse_serve(&["--deadline-ms", "250"]).unwrap();
        assert_eq!(
            inv.config.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        let inv = parse_serve(&[
            "--queue-depth",
            "8",
            "--max-ops",
            "64",
            "--max-edges",
            "256",
            "--journal-dir",
            "/tmp/wal",
            "--snapshot-every",
            "64",
            "--cache-capacity",
            "512",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(inv.config.queue_depth, 8);
        assert_eq!(inv.config.max_ops, Some(64));
        assert_eq!(inv.config.max_edges, Some(256));
        assert_eq!(
            inv.config.journal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/wal"))
        );
        assert_eq!(inv.config.snapshot_every, 64);
        assert_eq!(inv.config.cache_capacity, 512);
        assert_eq!(inv.config.threads, 3);
        // The cache defaults to off (capacity 0) and the batch pool to
        // auto-sizing (0 = host cores).
        assert_eq!(parse_serve(&[]).unwrap().config.cache_capacity, 0);
        assert_eq!(parse_serve(&[]).unwrap().config.threads, 0);
        assert_eq!(run_args(&["serve", "--threads", "x"]).unwrap_err().code, 2);
        // Bad values and stray flags are usage errors (exit code 2),
        // reported before any stdin read.
        assert_eq!(
            run_args(&["serve", "--workers", "nope"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_args(&["serve", "--deadline-ms", "x"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_args(&["serve", "--queue-depth", "0"]).unwrap_err().code,
            2
        );
        assert_eq!(run_args(&["serve", "--max-ops", "x"]).unwrap_err().code, 2);
        assert_eq!(run_args(&["serve", "--frob"]).unwrap_err().code, 2);
        assert_eq!(
            run_args(&["serve", "--snapshot-every", "x"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_args(&["serve", "--cache-capacity", "x"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn serve_listen_flag_parsing() {
        let inv = parse_serve(&["--listen", "127.0.0.1:7070", "--max-sessions", "4"]).unwrap();
        assert_eq!(
            inv.listen,
            Some(rsched_net::Listen::Tcp("127.0.0.1:7070".parse().unwrap()))
        );
        assert_eq!(inv.max_sessions, Some(4));
        assert_eq!(inv.max_inflight, None);
        let inv = parse_serve(&["--listen", "/tmp/rsched.sock", "--max-inflight", "16"]).unwrap();
        assert_eq!(
            inv.listen,
            Some(rsched_net::Listen::Unix("/tmp/rsched.sock".into()))
        );
        assert_eq!(inv.max_inflight, Some(16));
        // `--stdio` is the explicit default transport.
        let inv = parse_serve(&["--stdio", "--workers", "2"]).unwrap();
        assert_eq!(inv.listen, None);
        assert_eq!(inv.config.workers, 2);

        // Malformed --listen surfaces the exact shape error.
        let err = parse_serve(&["--listen", "localhost:7070"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(
            err.message.contains(
                "--listen expects <ip:port> (e.g. 127.0.0.1:7070) or a unix socket path \
                 containing '/', got 'localhost:7070'"
            ),
            "{}",
            err.message
        );
        // The transports are mutually exclusive.
        let err = parse_serve(&["--listen", "127.0.0.1:0", "--stdio"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(
            err.message.contains("mutually exclusive"),
            "{}",
            err.message
        );
        // Quotas are per-connection, so they need a socket transport.
        for flag in ["--max-sessions", "--max-inflight"] {
            let err = parse_serve(&[flag, "3"]).unwrap_err();
            assert_eq!(err.code, 2);
            assert!(
                err.message.contains(&format!("{flag} requires --listen")),
                "{}",
                err.message
            );
            let err = parse_serve(&["--listen", "127.0.0.1:0", flag, "x"]).unwrap_err();
            assert_eq!(err.code, 2);
        }
    }

    #[test]
    fn serve_lifecycle_flag_parsing() {
        let inv = parse_serve(&[
            "--listen",
            "127.0.0.1:0",
            "--idle-timeout-ms",
            "30000",
            "--read-deadline-ms",
            "5000",
            "--drain-timeout-ms",
            "2000",
        ])
        .unwrap();
        assert_eq!(
            inv.idle_timeout,
            Some(std::time::Duration::from_millis(30000))
        );
        assert_eq!(
            inv.read_deadline,
            Some(std::time::Duration::from_millis(5000))
        );
        assert_eq!(
            inv.drain_timeout,
            Some(std::time::Duration::from_millis(2000))
        );
        // All three default to off.
        let inv = parse_serve(&["--listen", "127.0.0.1:0"]).unwrap();
        assert_eq!(inv.idle_timeout, None);
        assert_eq!(inv.read_deadline, None);
        assert_eq!(inv.drain_timeout, None);
        // Lifecycle settings are socket-only and must be numeric.
        for flag in [
            "--idle-timeout-ms",
            "--read-deadline-ms",
            "--drain-timeout-ms",
        ] {
            let err = parse_serve(&[flag, "100"]).unwrap_err();
            assert_eq!(err.code, 2);
            assert!(
                err.message.contains(&format!("{flag} requires --listen")),
                "{}",
                err.message
            );
            let err = parse_serve(&["--listen", "127.0.0.1:0", flag, "x"]).unwrap_err();
            assert_eq!(err.code, 2);
            assert!(
                err.message.contains("expects milliseconds"),
                "{}",
                err.message
            );
        }
    }

    #[test]
    fn fuzz_flag_parsing() {
        let args = [
            "--seed".to_string(),
            "9".to_string(),
            "--iters".to_string(),
            "17".to_string(),
            "--minimize".to_string(),
            "--repro-dir".to_string(),
            "/tmp/repros".to_string(),
        ];
        let flags: Vec<&String> = args.iter().collect();
        let cfg = parse_fuzz_config(&flags).unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.iters, 17);
        assert!(cfg.minimize);
        assert_eq!(
            cfg.repro_dir.as_deref(),
            Some(std::path::Path::new("/tmp/repros"))
        );
        assert_eq!(run_args(&["fuzz", "--seed", "x"]).unwrap_err().code, 2);
        assert_eq!(run_args(&["fuzz", "--frob"]).unwrap_err().code, 2);
        // `--faults` is a bare flag: the parser must not eat an operand.
        let args = [
            "--faults".to_string(),
            "--seed".to_string(),
            "3".to_string(),
        ];
        let flags: Vec<&String> = args.iter().collect();
        assert_eq!(parse_fuzz_config(&flags).unwrap().seed, 3);
    }

    #[test]
    fn fuzz_smoke_run_is_clean() {
        let out = run_args(&["fuzz", "--seed", "5", "--iters", "8"]).unwrap();
        assert!(out.contains("zero oracle violations"), "{out}");
        assert!(out.contains("protocol contract held"), "{out}");
        assert!(
            out.contains("socket protocol and stdio parity held"),
            "{out}"
        );
        assert!(out.contains("cache transparency held"), "{out}");
        assert!(!out.contains("fault fuzz"), "{out}");
    }

    #[test]
    fn fuzz_cache_only_smoke_run_is_clean() {
        let out = run_args(&["fuzz", "--seed", "9", "--iters", "16", "--cache"]).unwrap();
        assert!(out.contains("cache fuzz (seed 9)"), "{out}");
        assert!(out.contains("cache transparency held"), "{out}");
        // Cache-only mode skips every other phase.
        assert!(!out.contains("graph fuzz"), "{out}");
        assert!(!out.contains("net fuzz"), "{out}");
    }

    #[test]
    fn fuzz_chaos_only_smoke_run_is_clean() {
        let out = run_args(&["fuzz", "--seed", "13", "--iters", "25", "--chaos"]).unwrap();
        assert!(out.contains("chaos fuzz (seed 13)"), "{out}");
        assert!(out.contains("server survived every fault"), "{out}");
        // Chaos-only mode skips every other phase.
        assert!(!out.contains("graph fuzz"), "{out}");
        assert!(!out.contains("net fuzz"), "{out}");
    }

    #[test]
    fn fuzz_faults_smoke_run_is_clean() {
        let out = run_args(&["fuzz", "--seed", "11", "--iters", "32", "--faults"]).unwrap();
        assert!(out.contains("fault fuzz"), "{out}");
        assert!(out.contains("fault-tolerance contract held"), "{out}");
    }

    #[test]
    fn optimize_serializes_fan_and_referees_rounds() {
        // Four concurrent 2-cycle ops: a unit budget forces serialization.
        let p = write_temp("optimize_fan", "op a 2\nop b 2\nop c 2\nop d 2\n");
        let out = run_args(&["optimize", p.to_str().unwrap(), "--budget", "1"]).unwrap();
        assert!(out.contains("accepted"), "{out}");
        assert!(out.contains("oracle: accepted state re-proven"), "{out}");
        assert!(out.contains("pressure 0"), "{out}");
        assert!(out.contains("converged"), "{out}");
        assert!(out.contains("pareto:"), "{out}");
        // A budget wide enough for the whole fan converges untouched.
        let out = run_args(&["optimize", p.to_str().unwrap(), "--budget", "4"]).unwrap();
        assert!(out.contains("0 accepted"), "{out}");
    }

    #[test]
    fn optimize_rejects_bad_flags() {
        let p = write_temp("optimize_flags", "op a 2\nop b 2\n");
        let path = p.to_str().unwrap();
        assert_eq!(
            run_args(&["optimize", path, "--budget", "0"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_args(&["optimize", path, "--style", "gray"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_args(&["optimize", path, "--max-rounds", "zero"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn fuzz_optimize_smoke_run_is_clean() {
        let out = run_args(&["fuzz", "--seed", "11", "--iters", "24", "--optimize"]).unwrap();
        assert!(out.contains("optimize fuzz"), "{out}");
        assert!(out.contains("optimize contract held"), "{out}");
    }

    #[test]
    fn failures_bubble_with_messages() {
        let p = write_temp("bad", "op a 1\nop b 1\ndep a b\nmin a b 9\nmax a b 2\n");
        let err = run_args(&["schedule", p.to_str().unwrap()]).unwrap_err();
        assert!(err.message.contains("unfeasible"));
    }
}
