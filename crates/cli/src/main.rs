//! `rsched` — command-line driver for the relative-scheduling toolchain.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rsched_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("rsched: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
