//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the API subset its property tests actually use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, integer-range and tuple strategies, [`Just`], [`any`],
//! [`collection::vec`], [`option::of`], weighted [`prop_oneof!`], and the
//! [`proptest!`] / [`prop_assert!`] macros.
//!
//! Semantics differ from the real crate in two deliberate ways: generation
//! is driven by a deterministic per-test RNG (seeded from the test's module
//! path), and there is **no shrinking** — a failing case panics with the
//! generated values still bound, which is enough for CI-grade regression
//! detection in an offline environment.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator driving all strategies (xoshiro256** seeded via
/// SplitMix64 from a name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded deterministically from `name` (typically the
    /// test's `module_path!() :: name`).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..span` (`span == 0` yields 0).
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            0
        } else {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// produces one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        R: Strategy,
        F: Fn(Self::Value) -> R,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into composite values, applied up to `depth`
    /// levels (`desired_size` / `expected_branch_size` are accepted for API
    /// compatibility; size is bounded structurally by the depth cap here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = recurse(current.clone()).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Mix leaves back in so generated depths vary.
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    composite.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Support types for the [`prop_oneof!`] macro.
pub mod strategy {
    pub use super::BoxedStrategy;
    use super::{Strategy, TestRng};

    /// A weighted union of strategies: each generation picks one arm with
    /// probability proportional to its weight.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: 'static> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-low, exclusive-high length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        hi_exclusive: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n as u64,
                hi_exclusive: n as u64 + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start as u64,
                hi_exclusive: r.end as u64,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start() as u64,
                hi_exclusive: *r.end() as u64 + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some with probability 3/4, matching the real crate's bias
            // toward populated values.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// A strategy producing `None` or `Some` of an `inner` value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

thread_local! {
    /// Set while a `proptest!` case body runs so failure messages can point
    /// at the deterministic case index.
    pub static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(...)]`, then any number
/// of `fn name(pat in strategy, ...) { body }` items carrying their own
/// attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $crate::CURRENT_CASE.with(|c| c.set(__case));
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    // The body runs in a closure returning Result so tests
                    // can early-exit with `return Ok(())`, as under the
                    // real crate.
                    let __body = || {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let __outcome: ::std::result::Result<
                        (),
                        ::std::boxed::Box<dyn ::std::error::Error>,
                    > = __body();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property failed at case {__case}: {e}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "property failed at case {}: {}",
                $crate::CURRENT_CASE.with(|c| c.get()),
                format!($($fmt)*),
            );
        }
    };
}

/// Asserts equality inside a property body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// A weighted (or uniform) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let strat = (3usize..9, 0u64..=4, -2i64..3);
        for _ in 0..500 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng);
            assert!((3..9).contains(&a));
            assert!(b <= 4);
            assert!((-2..3).contains(&c));
        }
    }

    #[test]
    fn oneof_respects_zero_weighted_absence() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![3 => 10u64..20, 1 => Just(99u64)];
        let mut saw_just = 0;
        for _ in 0..400 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((10..20).contains(&v) || v == 99);
            if v == 99 {
                saw_just += 1;
            }
        }
        assert!(saw_just > 20 && saw_just < 250, "got {saw_just}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from(*v < 8),
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 12, 3, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..200 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 7, "depth {} too deep: {t:?}", depth(&t));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns(
            (a, b) in (0u64..5, 0u64..5),
            v in crate::collection::vec(0usize..3, 1..4),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.len(), v.iter().copied().count());
        }
    }
}
