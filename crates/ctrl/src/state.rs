//! Cycle-accurate behavioural model of a generated control unit.
//!
//! Both control styles are modelled faithfully to their hardware: the
//! counter style keeps one saturating counter per anchor, the
//! shift-register style an actual bit pipeline — so a behavioural
//! divergence between the two would show up in simulation, not be masked
//! by a shared implementation.

use rsched_graph::VertexId;

use crate::unit::{ControlStyle, ControlUnit};

#[derive(Debug, Clone)]
enum AnchorState {
    /// `None` until `done_a`; then cycles elapsed since completion,
    /// saturating at `max_offset`.
    Counter { value: Option<u64>, max: u64 },
    /// `bits[i]` = at least `i` cycles elapsed since completion
    /// (`bits[0]` is the sticky done).
    ShiftRegister { bits: Vec<bool> },
}

/// The run-time state of a control unit: feed `done` events, advance
/// cycles, and sample `enable` outputs.
///
/// Protocol per clock cycle:
/// 1. assert the `done` events of anchors completing *this* cycle
///    ([`ControlState::assert_done`]);
/// 2. sample enables ([`ControlState::enable`]) — an operation whose
///    enable is asserted starts this cycle;
/// 3. advance the clock ([`ControlState::tick`]).
#[derive(Debug, Clone)]
pub struct ControlState<'u> {
    unit: &'u ControlUnit,
    anchors: Vec<AnchorState>,
}

impl<'u> ControlState<'u> {
    pub(crate) fn new(unit: &'u ControlUnit) -> Self {
        let anchors = unit
            .anchors()
            .iter()
            .map(|ac| match unit.style() {
                ControlStyle::Counter => AnchorState::Counter {
                    value: None,
                    max: ac.max_offset,
                },
                ControlStyle::ShiftRegister => AnchorState::ShiftRegister {
                    bits: vec![false; ac.max_offset as usize + 1],
                },
            })
            .collect();
        ControlState { unit, anchors }
    }

    /// Registers the completion of `anchor` in the current cycle: its
    /// counter starts at 0 / its sticky done is raised.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is not an anchor of the control unit.
    pub fn assert_done(&mut self, anchor: VertexId) {
        let i = self
            .unit
            .anchor_position(anchor)
            .unwrap_or_else(|| panic!("{anchor} is not an anchor of this control unit"));
        match &mut self.anchors[i] {
            AnchorState::Counter { value, .. } => {
                if value.is_none() {
                    *value = Some(0);
                }
            }
            AnchorState::ShiftRegister { bits } => {
                bits[0] = true;
            }
        }
    }

    /// Advances one clock cycle: counters increment (saturating), shift
    /// registers shift.
    pub fn tick(&mut self) {
        for st in &mut self.anchors {
            match st {
                AnchorState::Counter { value, max } => {
                    if let Some(v) = value {
                        *v = (*v + 1).min(*max + 1);
                    }
                }
                AnchorState::ShiftRegister { bits } => {
                    for i in (1..bits.len()).rev() {
                        bits[i] = bits[i - 1];
                    }
                    // bits[0] is sticky: once done, stays done.
                }
            }
        }
    }

    /// Samples the enable signal of vertex `v` in the current cycle:
    /// the conjunction of all its per-anchor terms.
    ///
    /// Vertices with no terms (the source) are enabled from cycle 0.
    pub fn enable(&self, v: VertexId) -> bool {
        self.unit.enable_terms(v).iter().all(|t| {
            let i = self
                .unit
                .anchor_position(t.anchor)
                .expect("term references a known anchor");
            match &self.anchors[i] {
                AnchorState::Counter { value, .. } => value.is_some_and(|c| c >= t.offset),
                AnchorState::ShiftRegister { bits } => bits[t.offset as usize],
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::unit::{generate, ControlStyle};
    use rsched_core::schedule;
    use rsched_graph::{ConstraintGraph, ExecDelay};

    /// Both styles must produce identical enable waveforms.
    #[test]
    fn styles_agree_cycle_by_cycle() {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Unbounded);
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        let w = g.add_operation("w", ExecDelay::Fixed(2));
        g.add_min_constraint(a, v, 2).unwrap();
        g.add_dependency(v, w).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        let counter_unit = generate(&g, &omega, ControlStyle::Counter);
        let sr_unit = generate(&g, &omega, ControlStyle::ShiftRegister);
        let mut cs = counter_unit.new_state();
        let mut ss = sr_unit.new_state();

        // Source completes at cycle 0; anchor a completes at cycle 5.
        for cycle in 0..12u64 {
            if cycle == 0 {
                cs.assert_done(g.source());
                ss.assert_done(g.source());
            }
            if cycle == 5 {
                cs.assert_done(a);
                ss.assert_done(a);
            }
            for vertex in g.vertex_ids() {
                assert_eq!(
                    cs.enable(vertex),
                    ss.enable(vertex),
                    "enable({vertex}) diverges at cycle {cycle}"
                );
            }
            cs.tick();
            ss.tick();
        }
    }

    /// enable asserts exactly `offset` cycles after the anchor's done.
    #[test]
    fn enable_fires_at_the_offset() {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Unbounded);
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        g.add_min_constraint(a, v, 3).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        for style in [ControlStyle::Counter, ControlStyle::ShiftRegister] {
            let unit = generate(&g, &omega, style);
            let mut st = unit.new_state();
            st.assert_done(g.source()); // activation
            let mut fired_at = None;
            for cycle in 0..10u64 {
                if cycle == 2 {
                    st.assert_done(a); // a completes at cycle 2
                }
                if fired_at.is_none() && st.enable(v) {
                    fired_at = Some(cycle);
                }
                st.tick();
            }
            // a done at cycle 2 + offset 3 => enable at cycle 5.
            assert_eq!(fired_at, Some(5), "style {style:?}");
        }
    }

    /// Zero-offset dependents are enabled in the completion cycle itself.
    #[test]
    fn zero_offset_enables_same_cycle() {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Unbounded);
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        g.add_dependency(a, v).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        for style in [ControlStyle::Counter, ControlStyle::ShiftRegister] {
            let unit = generate(&g, &omega, style);
            let mut st = unit.new_state();
            st.assert_done(g.source());
            assert!(!st.enable(v), "not before a completes");
            st.tick();
            st.assert_done(a);
            assert!(st.enable(v), "same cycle as done_a (offset 0)");
        }
    }

    #[test]
    #[should_panic(expected = "not an anchor")]
    fn foreign_done_panics() {
        let mut g = ConstraintGraph::new();
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        let unit = generate(&g, &omega, ControlStyle::Counter);
        let mut st = unit.new_state();
        st.assert_done(v);
    }
}
