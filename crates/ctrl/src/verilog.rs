//! Structural Verilog emission for synthesized control netlists.
//!
//! Turns a gate-level [`Netlist`](crate::Netlist) into a synthesizable
//! Verilog-2001 module: one `wire` per net, continuous assignments for the
//! combinational cells, and one always-block flip-flop per DFF (rising
//! edge, synchronous active-high reset to 0). `done_*` signals are module
//! inputs, `enable_*` signals outputs — ready to drop next to a datapath.

use std::fmt::Write as _;

use crate::netlist::{Netlist, SynthesizedControl};

impl Netlist {
    /// Emits the netlist as a structural Verilog module named `name`.
    ///
    /// The module has `clk` and `rst` inputs, one input per `done` signal
    /// and one output per `enable` signal (names sanitized to Verilog
    /// identifiers).
    pub fn to_verilog(&self, name: &str) -> String {
        let mut out = String::new();
        let ident = |s: &str| -> String {
            let mut id: String = s
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                id.insert(0, '_');
            }
            id
        };
        let inputs: Vec<String> = self.inputs().iter().map(|(n, _)| ident(n)).collect();
        let outputs: Vec<String> = self.outputs().iter().map(|(n, _)| ident(n)).collect();

        let _ = writeln!(out, "module {} (", ident(name));
        let _ = writeln!(out, "    input  wire clk,");
        let _ = writeln!(out, "    input  wire rst,");
        for i in &inputs {
            let _ = writeln!(out, "    input  wire {i},");
        }
        for (k, o) in outputs.iter().enumerate() {
            let comma = if k + 1 == outputs.len() { "" } else { "," };
            let _ = writeln!(out, "    output wire {o}{comma}");
        }
        let _ = writeln!(out, ");");

        let _ = writeln!(out, "    wire n0 = 1'b0;");
        let _ = writeln!(out, "    wire n1 = 1'b1;");
        // Declare remaining nets.
        for net in 2..self.n_nets() {
            if self.is_dff_output(net) {
                let _ = writeln!(out, "    reg  n{net};");
            } else {
                let _ = writeln!(out, "    wire n{net};");
            }
        }
        // Bind inputs.
        for ((_, net), vname) in self.inputs().iter().zip(&inputs) {
            let _ = writeln!(out, "    assign n{} = {vname};", net.id());
        }
        // Combinational cells.
        for cell in self.cell_descriptions() {
            match cell {
                CellDesc::Not { a, y } => {
                    let _ = writeln!(out, "    assign n{y} = ~n{a};");
                }
                CellDesc::And { a, b, y } => {
                    let _ = writeln!(out, "    assign n{y} = n{a} & n{b};");
                }
                CellDesc::Or { a, b, y } => {
                    let _ = writeln!(out, "    assign n{y} = n{a} | n{b};");
                }
                CellDesc::Xor { a, b, y } => {
                    let _ = writeln!(out, "    assign n{y} = n{a} ^ n{b};");
                }
                CellDesc::Dff { d, q } => {
                    let _ = writeln!(out, "    always @(posedge clk)");
                    let _ = writeln!(out, "        if (rst) n{q} <= 1'b0;");
                    let _ = writeln!(out, "        else     n{q} <= n{d};");
                }
            }
        }
        // Bind outputs.
        for ((_, net), vname) in self.outputs().iter().zip(&outputs) {
            let _ = writeln!(out, "    assign {vname} = n{};", net.id());
        }
        let _ = writeln!(out, "endmodule");
        out
    }
}

impl SynthesizedControl {
    /// Emits the whole synthesized control as a Verilog module.
    pub fn to_verilog(&self, name: &str) -> String {
        self.netlist.to_verilog(name)
    }
}

/// A cell description for external emitters (the internal `Cell` enum is
/// private; this mirrors it with raw net ids).
pub(crate) enum CellDesc {
    Not { a: u32, y: u32 },
    And { a: u32, b: u32, y: u32 },
    Or { a: u32, b: u32, y: u32 },
    Xor { a: u32, b: u32, y: u32 },
    Dff { d: u32, q: u32 },
}

#[cfg(test)]
mod tests {
    use crate::netlist::synthesize;
    use crate::unit::{generate, ControlStyle};
    use rsched_core::schedule;
    use rsched_graph::{ConstraintGraph, ExecDelay};

    fn sample() -> crate::netlist::SynthesizedControl {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("sync", ExecDelay::Unbounded);
        let v = g.add_operation("alu", ExecDelay::Fixed(2));
        g.add_min_constraint(a, v, 2).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        synthesize(&generate(&g, &omega, ControlStyle::Counter))
    }

    #[test]
    fn verilog_module_structure() {
        let synth = sample();
        let v = synth.to_verilog("gcd_control");
        assert!(v.starts_with("module gcd_control ("));
        assert!(v.contains("input  wire clk,"));
        assert!(v.contains("input  wire rst,"));
        assert!(v.contains("input  wire done_v0,"));
        assert!(v.contains("output wire enable_"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.trim_end().ends_with("endmodule"));
        // Balanced: every declared reg is driven by exactly one always
        // block.
        let regs = v.matches("    reg  ").count();
        let always = v.matches("always @(posedge clk)").count();
        assert_eq!(regs, always);
        // No undeclared nets referenced: every "n<k>" token <= max net.
        assert!(!v.contains("n-"));
    }

    #[test]
    fn shift_register_style_emits_fewer_assigns() {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("sync", ExecDelay::Unbounded);
        let v = g.add_operation("alu", ExecDelay::Fixed(2));
        g.add_min_constraint(a, v, 3).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        let counter = synthesize(&generate(&g, &omega, ControlStyle::Counter)).to_verilog("ctr");
        let shift = synthesize(&generate(&g, &omega, ControlStyle::ShiftRegister)).to_verilog("sr");
        let combinational = |v: &str| v.matches("assign n").count();
        assert!(
            combinational(&shift) < combinational(&counter),
            "shift-register control needs less logic"
        );
    }
}
