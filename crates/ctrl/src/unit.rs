use std::fmt::Write as _;

use rsched_core::RelativeSchedule;
use rsched_graph::{ConstraintGraph, VertexId};

use crate::cost::ControlCost;
use crate::state::ControlState;

/// The implementation style of the control unit (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlStyle {
    /// One counter per anchor plus magnitude comparators.
    Counter,
    /// One shift register per anchor plus direct tap AND-ing.
    ShiftRegister,
}

/// Per-anchor synchronization hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchorControl {
    /// The anchor whose `done` signal drives this block.
    pub anchor: VertexId,
    /// `σ_a^max`: the largest offset any enable references.
    pub max_offset: u64,
}

/// One conjunction term of an operation's enable signal:
/// `Counter_a ≥ offset` or `SR_a[offset]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnableTerm {
    /// The anchor referenced.
    pub anchor: VertexId,
    /// The offset compared or tapped.
    pub offset: u64,
}

/// A generated control unit: per-anchor timing hardware plus per-operation
/// enable logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlUnit {
    style: ControlStyle,
    anchors: Vec<AnchorControl>,
    /// Enable conjunction per vertex, indexed by vertex index.
    enables: Vec<Vec<EnableTerm>>,
    names: Vec<String>,
}

/// Generates the control unit for `schedule` in the given style.
///
/// The enable of each operation conjoins one term per anchor *tracked by
/// the schedule* — pass a schedule restricted to the irredundant anchors
/// (`RelativeSchedule::restrict`) to obtain the reduced control the paper
/// advocates in §VI.
pub fn generate(
    graph: &ConstraintGraph,
    schedule: &RelativeSchedule,
    style: ControlStyle,
) -> ControlUnit {
    let mut enables = vec![Vec::new(); graph.n_vertices()];
    for v in graph.vertex_ids() {
        for (anchor, offset) in schedule.offsets_of(v) {
            enables[v.index()].push(EnableTerm {
                anchor,
                offset: offset.max(0) as u64,
            });
        }
    }
    let anchors = schedule
        .anchors()
        .iter()
        .map(|&a| AnchorControl {
            anchor: a,
            max_offset: schedule.max_offset(a).max(0) as u64,
        })
        .collect();
    let names = graph
        .vertex_ids()
        .map(|v| graph.vertex(v).name().to_owned())
        .collect();
    ControlUnit {
        style,
        anchors,
        enables,
        names,
    }
}

impl ControlUnit {
    /// The implementation style.
    pub fn style(&self) -> ControlStyle {
        self.style
    }

    /// The per-anchor hardware blocks.
    pub fn anchors(&self) -> &[AnchorControl] {
        &self.anchors
    }

    /// The enable conjunction of a vertex.
    pub fn enable_terms(&self, v: VertexId) -> &[EnableTerm] {
        &self.enables[v.index()]
    }

    /// Number of vertices covered.
    pub fn n_vertices(&self) -> usize {
        self.enables.len()
    }

    /// The hardware cost of this control implementation (§VI cost model).
    pub fn cost(&self) -> ControlCost {
        let mut cost = ControlCost::default();
        for ac in &self.anchors {
            match self.style {
                ControlStyle::Counter => {
                    // A counter must represent 0..=σ_max and one saturation
                    // state: ceil(log2(σ_max + 2)) bits.
                    let bits = (64 - (ac.max_offset + 1).leading_zeros()) as u64;
                    cost.register_bits += bits.max(1);
                }
                ControlStyle::ShiftRegister => {
                    // One flip-flop per stage 1..=σ_max; stage 0 is the
                    // (sticky) done signal itself.
                    cost.register_bits += ac.max_offset;
                }
            }
        }
        for terms in &self.enables {
            for t in terms {
                if self.style == ControlStyle::Counter {
                    let bits = (64 - (t.offset + 1).leading_zeros()) as u64;
                    cost.comparators += 1;
                    cost.comparator_bits += bits.max(1);
                }
            }
            if terms.len() > 1 {
                cost.and_inputs += terms.len() as u64;
            }
        }
        cost
    }

    /// A fresh behavioural state for cycle-accurate execution.
    pub fn new_state(&self) -> ControlState<'_> {
        ControlState::new(self)
    }

    /// A human-readable structural description (pseudo-netlist) of the
    /// generated control.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let style = match self.style {
            ControlStyle::Counter => "counter-based",
            ControlStyle::ShiftRegister => "shift-register-based",
        };
        let _ = writeln!(out, "control unit ({style})");
        for ac in &self.anchors {
            match self.style {
                ControlStyle::Counter => {
                    let _ = writeln!(
                        out,
                        "  counter C_{} : starts on done_{}, counts to {}",
                        ac.anchor, ac.anchor, ac.max_offset
                    );
                }
                ControlStyle::ShiftRegister => {
                    let _ = writeln!(
                        out,
                        "  shiftreg SR_{} : length {}, input done_{}",
                        ac.anchor, ac.max_offset, ac.anchor
                    );
                }
            }
        }
        for (vi, terms) in self.enables.iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            let exprs: Vec<String> = terms
                .iter()
                .map(|t| match self.style {
                    ControlStyle::Counter => format!("(C_{} >= {})", t.anchor, t.offset),
                    ControlStyle::ShiftRegister => format!("SR_{}[{}]", t.anchor, t.offset),
                })
                .collect();
            let _ = writeln!(
                out,
                "  enable_{} ({}) = {}",
                VertexId::from_index(vi),
                self.names[vi],
                exprs.join(" & ")
            );
        }
        out
    }

    pub(crate) fn anchor_position(&self, a: VertexId) -> Option<usize> {
        self.anchors.iter().position(|ac| ac.anchor == a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsched_core::schedule;
    use rsched_graph::ExecDelay;

    /// Fig. 12's setting: an operation depending on two anchors with
    /// offsets σ_a(v) = 2 and σ_b(v) = 3.
    fn fig12() -> (ConstraintGraph, VertexId, VertexId, VertexId) {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Unbounded);
        let b = g.add_operation("b", ExecDelay::Unbounded);
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        g.add_min_constraint(a, v, 2).unwrap();
        g.add_min_constraint(b, v, 3).unwrap();
        g.polarize().unwrap();
        (g, a, b, v)
    }

    #[test]
    fn fig12_enable_conjoins_both_anchors() {
        let (g, a, b, v) = fig12();
        let omega = schedule(&g).unwrap();
        let unit = generate(&g, &omega, ControlStyle::Counter);
        let terms = unit.enable_terms(v);
        assert_eq!(terms.len(), 3); // source, a, b
        assert!(terms.contains(&EnableTerm {
            anchor: a,
            offset: 2
        }));
        assert!(terms.contains(&EnableTerm {
            anchor: b,
            offset: 3
        }));
    }

    #[test]
    fn counter_and_shift_register_costs_differ_as_in_fig12() {
        let (g, _, _, _) = fig12();
        let omega = schedule(&g).unwrap();
        let counter = generate(&g, &omega, ControlStyle::Counter).cost();
        let sr = generate(&g, &omega, ControlStyle::ShiftRegister).cost();
        // Counters need comparators, shift registers none.
        assert!(counter.comparators > 0);
        assert_eq!(sr.comparators, 0);
        // Shift registers trade registers for logic.
        assert!(sr.register_bits >= counter.register_bits.min(sr.register_bits));
        assert!(sr.logic_estimate() < counter.logic_estimate());
    }

    #[test]
    fn irredundant_restriction_shrinks_control() {
        // Cascaded anchors: a -> b -> v; with full sets v's enable has 3
        // terms, with IR sets only 1 (b).
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Unbounded);
        let b = g.add_operation("b", ExecDelay::Unbounded);
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, v).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        let analysis = rsched_core::IrredundantAnchors::analyze(&g).unwrap();
        let restricted = omega.restrict(analysis.irredundant.family());
        let full = generate(&g, &omega, ControlStyle::ShiftRegister);
        let min = generate(&g, &restricted, ControlStyle::ShiftRegister);
        assert_eq!(full.enable_terms(v).len(), 3);
        assert_eq!(min.enable_terms(v).len(), 1);
        assert!(min.cost().total_estimate() <= full.cost().total_estimate());
    }

    #[test]
    fn describe_mentions_every_block() {
        let (g, _, _, v) = fig12();
        let omega = schedule(&g).unwrap();
        for style in [ControlStyle::Counter, ControlStyle::ShiftRegister] {
            let unit = generate(&g, &omega, style);
            let text = unit.describe();
            assert!(text.contains(&format!("enable_{v}")));
            assert!(!text.is_empty());
        }
    }
}
