//! Gate-level synthesis of control units.
//!
//! §VI of the paper describes control implementations down to logic:
//! counters with magnitude comparators, or shift registers with direct
//! taps, AND-ed into per-operation enables (Fig. 12). This module
//! *actually builds that logic* — a structural netlist of D flip-flops
//! and NOT/AND/OR/XOR gates — plus a cycle-accurate logic simulator, so
//! the generated control can be validated at the gate level against the
//! behavioural model (the paper's "logic-level implementations have been
//! extensively simulated", §VII).
//!
//! Synthesized structure per anchor `a`:
//!
//! * a *sticky done* flip-flop (`done_a` OR-ed into itself);
//! * **counter style** — a ripple-increment register of
//!   `⌈log₂(σ_a^max + 2)⌉` bits, enabled while unsaturated, plus one
//!   magnitude comparator `(C_a ≥ σ_a(v))` per enable term;
//! * **shift-register style** — `σ_a^max` stages fed by the sticky done,
//!   tapped directly.
//!
//! Enables are AND trees over their terms.

use std::collections::HashMap;
use std::fmt::Write as _;

use rsched_graph::VertexId;

use crate::unit::{ControlStyle, ControlUnit};

/// A net (signal) in the synthesized netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Net(u32);

impl Net {
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw net id (for emitters).
    pub(crate) fn id(self) -> u32 {
        self.0
    }
}

/// A primitive cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Not {
        a: Net,
        y: Net,
    },
    And {
        a: Net,
        b: Net,
        y: Net,
    },
    Or {
        a: Net,
        b: Net,
        y: Net,
    },
    Xor {
        a: Net,
        b: Net,
        y: Net,
    },
    /// Rising-edge D flip-flop, reset to 0.
    Dff {
        d: Net,
        q: Net,
    },
}

/// Gate and register counts of a synthesized netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// D flip-flops.
    pub dffs: usize,
    /// Two-input combinational gates (AND/OR/XOR).
    pub gates2: usize,
    /// Inverters.
    pub inverters: usize,
}

impl NetlistStats {
    /// Total cell count.
    pub fn total_cells(&self) -> usize {
        self.dffs + self.gates2 + self.inverters
    }
}

/// A structural gate-level netlist with named inputs and outputs.
#[derive(Debug, Clone)]
pub struct Netlist {
    n_nets: u32,
    cells: Vec<Cell>,
    const0: Net,
    const1: Net,
    inputs: Vec<(String, Net)>,
    outputs: Vec<(String, Net)>,
}

impl Netlist {
    fn new() -> Self {
        let mut nl = Netlist {
            n_nets: 0,
            cells: Vec::new(),
            const0: Net(0),
            const1: Net(0),
            inputs: Vec::new(),
            outputs: Vec::new(),
        };
        nl.const0 = nl.fresh();
        nl.const1 = nl.fresh();
        nl
    }

    fn fresh(&mut self) -> Net {
        let n = Net(self.n_nets);
        self.n_nets += 1;
        n
    }

    /// The constant-0 net.
    pub fn const0(&self) -> Net {
        self.const0
    }

    /// The constant-1 net.
    pub fn const1(&self) -> Net {
        self.const1
    }

    fn input(&mut self, name: String) -> Net {
        let n = self.fresh();
        self.inputs.push((name, n));
        n
    }

    fn output(&mut self, name: String, net: Net) {
        self.outputs.push((name, net));
    }

    fn not(&mut self, a: Net) -> Net {
        if a == self.const0 {
            return self.const1;
        }
        if a == self.const1 {
            return self.const0;
        }
        let y = self.fresh();
        self.cells.push(Cell::Not { a, y });
        y
    }

    fn and(&mut self, a: Net, b: Net) -> Net {
        if a == self.const0 || b == self.const0 {
            return self.const0;
        }
        if a == self.const1 {
            return b;
        }
        if b == self.const1 {
            return a;
        }
        let y = self.fresh();
        self.cells.push(Cell::And { a, b, y });
        y
    }

    fn or(&mut self, a: Net, b: Net) -> Net {
        if a == self.const1 || b == self.const1 {
            return self.const1;
        }
        if a == self.const0 {
            return b;
        }
        if b == self.const0 {
            return a;
        }
        let y = self.fresh();
        self.cells.push(Cell::Or { a, b, y });
        y
    }

    fn xor(&mut self, a: Net, b: Net) -> Net {
        if a == self.const0 {
            return b;
        }
        if b == self.const0 {
            return a;
        }
        if a == self.const1 {
            return self.not(b);
        }
        if b == self.const1 {
            return self.not(a);
        }
        let y = self.fresh();
        self.cells.push(Cell::Xor { a, b, y });
        y
    }

    fn xnor(&mut self, a: Net, b: Net) -> Net {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// A D flip-flop (reset to 0) driven by `d`; returns its `q` output.
    fn dff(&mut self, d: Net) -> Net {
        let q = self.fresh();
        self.cells.push(Cell::Dff { d, q });
        q
    }

    /// AND-tree over any number of terms (empty = constant 1).
    fn and_tree(&mut self, terms: &[Net]) -> Net {
        match terms {
            [] => self.const1,
            [single] => *single,
            _ => {
                let mut acc = terms[0];
                for &t in &terms[1..] {
                    acc = self.and(acc, t);
                }
                acc
            }
        }
    }

    /// Named inputs (the `done_a` signals).
    pub fn inputs(&self) -> &[(String, Net)] {
        &self.inputs
    }

    /// Named outputs (the `enable_v` signals).
    pub fn outputs(&self) -> &[(String, Net)] {
        &self.outputs
    }

    /// Number of nets (for emitters).
    pub(crate) fn n_nets(&self) -> u32 {
        self.n_nets
    }

    /// `true` if the net is driven by a flip-flop.
    pub(crate) fn is_dff_output(&self, net: u32) -> bool {
        self.cells
            .iter()
            .any(|c| matches!(c, Cell::Dff { q, .. } if q.id() == net))
    }

    /// Cells as raw-id descriptions (for emitters).
    pub(crate) fn cell_descriptions(&self) -> Vec<crate::verilog::CellDesc> {
        use crate::verilog::CellDesc;
        self.cells
            .iter()
            .map(|c| match *c {
                Cell::Not { a, y } => CellDesc::Not {
                    a: a.id(),
                    y: y.id(),
                },
                Cell::And { a, b, y } => CellDesc::And {
                    a: a.id(),
                    b: b.id(),
                    y: y.id(),
                },
                Cell::Or { a, b, y } => CellDesc::Or {
                    a: a.id(),
                    b: b.id(),
                    y: y.id(),
                },
                Cell::Xor { a, b, y } => CellDesc::Xor {
                    a: a.id(),
                    b: b.id(),
                    y: y.id(),
                },
                Cell::Dff { d, q } => CellDesc::Dff {
                    d: d.id(),
                    q: q.id(),
                },
            })
            .collect()
    }

    /// Cell statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for c in &self.cells {
            match c {
                Cell::Dff { .. } => s.dffs += 1,
                Cell::Not { .. } => s.inverters += 1,
                _ => s.gates2 += 1,
            }
        }
        s
    }

    /// A human-readable structural dump.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let s = self.stats();
        let _ = writeln!(
            out,
            "netlist: {} nets, {} DFFs, {} 2-input gates, {} inverters",
            self.n_nets, s.dffs, s.gates2, s.inverters
        );
        for (name, net) in &self.inputs {
            let _ = writeln!(out, "  input  n{} = {}", net.0, name);
        }
        for (name, net) in &self.outputs {
            let _ = writeln!(out, "  output {} = n{}", name, net.0);
        }
        out
    }
}

/// Control synthesized to gates: the netlist plus the anchor/vertex net
/// bindings.
#[derive(Debug, Clone)]
pub struct SynthesizedControl {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// `done_a` input net per anchor.
    pub done_inputs: Vec<(VertexId, Net)>,
    /// `enable_v` output net per vertex.
    pub enable_outputs: Vec<(VertexId, Net)>,
}

impl SynthesizedControl {
    /// The `done` input net of an anchor.
    pub fn done_net(&self, anchor: VertexId) -> Option<Net> {
        self.done_inputs
            .iter()
            .find(|(a, _)| *a == anchor)
            .map(|(_, n)| *n)
    }

    /// The `enable` output net of a vertex.
    pub fn enable_net(&self, v: VertexId) -> Option<Net> {
        self.enable_outputs
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, n)| *n)
    }
}

/// Synthesizes a [`ControlUnit`] to a gate-level netlist.
pub fn synthesize(unit: &ControlUnit) -> SynthesizedControl {
    let mut nl = Netlist::new();
    let mut done_inputs = Vec::new();
    // Per anchor: sticky done + either counter bits or shift-register taps.
    struct AnchorNets {
        /// Counter style: register bit nets (LSB first).
        counter_bits: Vec<Net>,
        /// Shift style: tap nets, index = elapsed cycles (0 = sticky done).
        taps: Vec<Net>,
    }
    let mut per_anchor: HashMap<VertexId, AnchorNets> = HashMap::new();

    for ac in unit.anchors() {
        let done_in = nl.input(format!("done_{}", ac.anchor));
        done_inputs.push((ac.anchor, done_in));
        // Sticky done: q' = done_in OR q. Build with a feedback DFF: we
        // need q before d, so allocate the q net by building the DFF with
        // a placeholder d, then patching. Instead: allocate q as a fresh
        // net and push the cell manually after computing d.
        let q = nl.fresh();
        let d = nl.or(done_in, q);
        nl.cells.push(Cell::Dff { d, q });
        // `sticky` is asserted combinationally in the completion cycle
        // itself (offset-0 semantics) and latched thereafter.
        let sticky = nl.or(done_in, q);

        match unit.style() {
            ControlStyle::ShiftRegister => {
                let mut taps = vec![sticky];
                let mut prev = sticky;
                for _ in 0..ac.max_offset {
                    let stage = nl.dff(prev);
                    taps.push(stage);
                    prev = stage;
                }
                per_anchor.insert(
                    ac.anchor,
                    AnchorNets {
                        counter_bits: Vec::new(),
                        taps,
                    },
                );
            }
            ControlStyle::Counter => {
                // w bits counting 0..=max+1 (saturation value max+1).
                let w = (64 - (ac.max_offset + 1).leading_zeros()).max(1) as usize;
                let sat_value = ac.max_offset + 1;
                // Allocate q nets first (feedback).
                let bits: Vec<Net> = (0..w).map(|_| nl.fresh()).collect();
                // saturated = (q == sat_value).
                let mut eq_terms = Vec::new();
                for (i, &b) in bits.iter().enumerate() {
                    let kbit = if (sat_value >> i) & 1 == 1 {
                        nl.const1
                    } else {
                        nl.const0
                    };
                    eq_terms.push(nl.xnor(b, kbit));
                }
                let saturated = nl.and_tree(&eq_terms);
                let not_sat = nl.not(saturated);
                // Count while done is sticky and not saturated; the
                // counter holds 0 until the completion cycle (the
                // behavioural model counts cycles *since* completion, so
                // the increment applies from the completion cycle on).
                let en = nl.and(sticky, not_sat);
                // Ripple increment: carry_0 = en.
                let mut carry = en;
                for &b in bits.iter() {
                    let sum = nl.xor(b, carry);
                    let next_carry = nl.and(b, carry);
                    nl.cells.push(Cell::Dff { d: sum, q: b });
                    carry = next_carry;
                }
                per_anchor.insert(
                    ac.anchor,
                    AnchorNets {
                        counter_bits: bits,
                        taps: vec![sticky],
                    },
                );
            }
        }
    }

    // Enables.
    let mut enable_outputs = Vec::new();
    for vi in 0..unit.n_vertices() {
        let v = VertexId::from_index(vi);
        let terms = unit.enable_terms(v);
        let mut nets = Vec::new();
        for t in terms {
            let nets_of = &per_anchor[&t.anchor];
            let net = match unit.style() {
                ControlStyle::ShiftRegister => nets_of.taps[t.offset as usize],
                ControlStyle::Counter => {
                    // counter >= offset, where "counter value" is bits;
                    // note the counter equals cycles-since-completion and
                    // is 0 before completion, so offset-0 terms must also
                    // check the sticky done.
                    let ge = ge_const(&mut nl, &nets_of.counter_bits, t.offset);
                    nl.and(ge, nets_of.taps[0])
                }
            };
            nets.push(net);
        }
        let enable = nl.and_tree(&nets);
        nl.output(format!("enable_{v}"), enable);
        enable_outputs.push((v, enable));
    }

    SynthesizedControl {
        netlist: nl,
        done_inputs,
        enable_outputs,
    }
}

/// Magnitude comparator `value(bits) >= k` against a constant, MSB-down.
fn ge_const(nl: &mut Netlist, bits: &[Net], k: u64) -> Net {
    if k == 0 {
        return nl.const1();
    }
    // ge = OR_i (bit_i > k_i AND eq above) OR (all eq).
    let mut eq_so_far = nl.const1();
    let mut ge = nl.const0();
    for i in (0..bits.len()).rev() {
        let kbit = (k >> i) & 1 == 1;
        if !kbit {
            // bit_i = 1, k_i = 0 => greater (given equality above).
            let gt_here = nl.and(eq_so_far, bits[i]);
            ge = nl.or(ge, gt_here);
            let eq_bit = nl.not(bits[i]); // eq when bit == 0
            eq_so_far = nl.and(eq_so_far, eq_bit);
        } else {
            // k_i = 1: equal requires bit_i = 1; cannot be greater here.
            eq_so_far = nl.and(eq_so_far, bits[i]);
        }
    }
    nl.or(ge, eq_so_far)
}

/// A cycle-accurate logic simulator over a [`Netlist`].
#[derive(Debug, Clone)]
pub struct LogicSim {
    netlist: Netlist,
    values: Vec<bool>,
    /// Evaluation order of combinational cell indices.
    comb_order: Vec<usize>,
    /// DFF cell indices.
    dffs: Vec<usize>,
}

impl LogicSim {
    /// Builds a simulator (computing the combinational evaluation order).
    ///
    /// # Panics
    ///
    /// Panics if the combinational logic is cyclic (a synthesis bug).
    pub fn new(netlist: Netlist) -> Self {
        let n = netlist.n_nets as usize;
        // Driver cell per net (combinational only).
        let mut driver: Vec<Option<usize>> = vec![None; n];
        let mut dffs = Vec::new();
        for (ci, c) in netlist.cells.iter().enumerate() {
            match *c {
                Cell::Not { y, .. }
                | Cell::And { y, .. }
                | Cell::Or { y, .. }
                | Cell::Xor { y, .. } => driver[y.index()] = Some(ci),
                Cell::Dff { .. } => dffs.push(ci),
            }
        }
        // Topological order by DFS from each combinational output.
        let mut order = Vec::new();
        let mut state = vec![0u8; netlist.cells.len()]; // 0 unvisited, 1 visiting, 2 done
        fn visit(
            ci: usize,
            cells: &[Cell],
            driver: &[Option<usize>],
            state: &mut [u8],
            order: &mut Vec<usize>,
        ) {
            if state[ci] == 2 {
                return;
            }
            assert_ne!(state[ci], 1, "combinational cycle in synthesized netlist");
            state[ci] = 1;
            let ins: [Option<Net>; 2] = match cells[ci] {
                Cell::Not { a, .. } => [Some(a), None],
                Cell::And { a, b, .. } | Cell::Or { a, b, .. } | Cell::Xor { a, b, .. } => {
                    [Some(a), Some(b)]
                }
                Cell::Dff { .. } => [None, None],
            };
            for net in ins.into_iter().flatten() {
                if let Some(dc) = driver[net.index()] {
                    visit(dc, cells, driver, state, order);
                }
            }
            state[ci] = 2;
            order.push(ci);
        }
        for ci in 0..netlist.cells.len() {
            if !matches!(netlist.cells[ci], Cell::Dff { .. }) {
                visit(ci, &netlist.cells, &driver, &mut state, &mut order);
            }
        }
        let mut values = vec![false; n];
        values[netlist.const1.index()] = true;
        LogicSim {
            netlist,
            values,
            comb_order: order,
            dffs,
        }
    }

    /// Drives an input net for the current cycle.
    pub fn set(&mut self, net: Net, value: bool) {
        self.values[net.index()] = value;
    }

    /// Propagates combinational logic (call after setting inputs, before
    /// sampling outputs).
    pub fn settle(&mut self) {
        for &ci in &self.comb_order {
            let v = match self.netlist.cells[ci] {
                Cell::Not { a, .. } => !self.values[a.index()],
                Cell::And { a, b, .. } => self.values[a.index()] && self.values[b.index()],
                Cell::Or { a, b, .. } => self.values[a.index()] || self.values[b.index()],
                Cell::Xor { a, b, .. } => self.values[a.index()] ^ self.values[b.index()],
                Cell::Dff { .. } => unreachable!("DFFs are not combinational"),
            };
            let y = match self.netlist.cells[ci] {
                Cell::Not { y, .. }
                | Cell::And { y, .. }
                | Cell::Or { y, .. }
                | Cell::Xor { y, .. } => y,
                Cell::Dff { .. } => unreachable!(),
            };
            self.values[y.index()] = v;
        }
    }

    /// Samples a net (after [`LogicSim::settle`]).
    pub fn get(&self, net: Net) -> bool {
        self.values[net.index()]
    }

    /// Advances the clock: every DFF latches its `d`.
    pub fn tick(&mut self) {
        let latched: Vec<(Net, bool)> = self
            .dffs
            .iter()
            .map(|&ci| match self.netlist.cells[ci] {
                Cell::Dff { d, q } => (q, self.values[d.index()]),
                _ => unreachable!(),
            })
            .collect();
        for (q, v) in latched {
            self.values[q.index()] = v;
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::generate;
    use rsched_core::schedule;
    use rsched_graph::{ConstraintGraph, ExecDelay};

    fn fig12ish() -> (ConstraintGraph, VertexId, VertexId, VertexId) {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Unbounded);
        let b = g.add_operation("b", ExecDelay::Unbounded);
        let v = g.add_operation("v", ExecDelay::Fixed(1));
        g.add_min_constraint(a, v, 2).unwrap();
        g.add_min_constraint(b, v, 3).unwrap();
        g.polarize().unwrap();
        (g, a, b, v)
    }

    /// The synthesized gates must agree with the behavioural model cycle
    /// by cycle, for both styles and staggered done events.
    #[test]
    fn gate_level_matches_behavioural_model() {
        let (g, a, b, _) = fig12ish();
        let omega = schedule(&g).unwrap();
        for style in [ControlStyle::Counter, ControlStyle::ShiftRegister] {
            let unit = generate(&g, &omega, style);
            let synth = synthesize(&unit);
            let mut logic = LogicSim::new(synth.netlist.clone());
            let mut model = unit.new_state();
            // done schedule: source at 0, a at 3, b at 5.
            let dones: &[(u64, VertexId)] = &[(0, g.source()), (3, a), (5, b)];
            for cycle in 0..14u64 {
                for &(c, anchor) in dones {
                    let asserted = c == cycle;
                    if asserted {
                        model.assert_done(anchor);
                    }
                    let net = synth.done_net(anchor).expect("anchor input");
                    logic.set(net, asserted);
                }
                logic.settle();
                for v in g.vertex_ids() {
                    let gate = logic.get(synth.enable_net(v).expect("enable output"));
                    let behav = model.enable(v);
                    assert_eq!(
                        gate, behav,
                        "style {style:?}, cycle {cycle}, enable({v}): gate {gate} vs model {behav}"
                    );
                }
                logic.tick();
                model.tick();
            }
        }
    }

    /// Done pulses are single-cycle; the sticky latch must hold them.
    #[test]
    fn sticky_done_latches_pulses() {
        let (g, a, _, v) = fig12ish();
        let omega = schedule(&g).unwrap();
        let unit = generate(&g, &omega, ControlStyle::ShiftRegister);
        let synth = synthesize(&unit);
        let mut sim = LogicSim::new(synth.netlist.clone());
        // Pulse all dones at cycle 0/1, then never again.
        for cycle in 0..10u64 {
            for (anchor, net) in &synth.done_inputs {
                let fire =
                    (*anchor == g.source() && cycle == 0) || (*anchor != g.source() && cycle == 1);
                sim.set(*net, fire);
            }
            sim.settle();
            sim.tick();
        }
        sim.settle();
        // After enough cycles every enable is (and stays) asserted.
        assert!(sim.get(synth.enable_net(v).unwrap()));
        let _ = a;
    }

    #[test]
    fn comparator_matches_integer_semantics() {
        // Drive a bare comparator through a tiny netlist.
        for w in 1..=4usize {
            for k in 0..(1u64 << w) {
                let mut nl = Netlist::new();
                let bits: Vec<Net> = (0..w).map(|_| nl.input("b".to_string())).collect();
                let y = ge_const(&mut nl, &bits, k);
                nl.output("ge".into(), y);
                let mut sim = LogicSim::new(nl);
                for value in 0..(1u64 << w) {
                    for (i, &b) in bits.iter().enumerate() {
                        sim.set(b, (value >> i) & 1 == 1);
                    }
                    sim.settle();
                    assert_eq!(sim.get(y), value >= k, "w={w}, value={value}, k={k}");
                }
            }
        }
    }

    #[test]
    fn netlist_stats_and_describe() {
        let (g, _, _, _) = fig12ish();
        let omega = schedule(&g).unwrap();
        let counter = synthesize(&generate(&g, &omega, ControlStyle::Counter));
        let shift = synthesize(&generate(&g, &omega, ControlStyle::ShiftRegister));
        let cs = counter.netlist.stats();
        let ss = shift.netlist.stats();
        assert!(cs.dffs > 0 && ss.dffs > 0);
        // The §VI trade-off at gate level: counters burn more logic.
        assert!(cs.gates2 + cs.inverters > ss.gates2 + ss.inverters);
        let text = counter.netlist.describe();
        assert!(text.contains("netlist:"));
        assert!(text.contains("done_"));
        assert!(text.contains("enable_"));
    }
}
