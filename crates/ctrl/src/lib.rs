//! Control generation for relative schedules (§VI of the paper).
//!
//! A relative schedule defines each operation's start time as offsets from
//! the completion (`done_a`) of the anchors in its anchor set. The control
//! unit turns those offsets into per-operation `enable` signals:
//!
//! * **counter-based** — one counter per anchor, started by `done_a`;
//!   `enable_v = ∧_{a ∈ A(v)} (Counter_a ≥ σ_a(v))`;
//! * **shift-register-based** — one shift register of length `σ_a^max`
//!   per anchor, fed by `done_a`; `enable_v = ∧_{a ∈ A(v)} SR_a[σ_a(v)]`.
//!
//! The two styles implement the same enable function with different
//! register/logic trade-offs ([`ControlCost`]); generating from the
//! *irredundant* anchor sets shrinks both (fewer synchronization terms and
//! smaller `σ_a^max`), which is the paper's second motivation for
//! redundancy removal.
//!
//! [`ControlState`] is a cycle-accurate behavioural model of the generated
//! hardware, used by `rsched-sim` to execute schedules.
//!
//! # Example
//!
//! ```
//! use rsched_graph::{ConstraintGraph, ExecDelay};
//! use rsched_core::schedule;
//! use rsched_ctrl::{generate, ControlStyle};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = ConstraintGraph::new();
//! let sync = g.add_operation("sync", ExecDelay::Unbounded);
//! let op = g.add_operation("op", ExecDelay::Fixed(2));
//! g.add_dependency(sync, op)?;
//! g.polarize()?;
//! let omega = schedule(&g)?;
//! let counter = generate(&g, &omega, ControlStyle::Counter);
//! let shift = generate(&g, &omega, ControlStyle::ShiftRegister);
//! // Same enable behaviour, different hardware cost.
//! assert_ne!(counter.cost(), shift.cost());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod fsm;
mod netlist;
mod state;
mod unit;
mod verilog;

pub use cost::ControlCost;
pub use fsm::{Fsm, FsmError};
pub use netlist::{synthesize, LogicSim, Net, Netlist, NetlistStats, SynthesizedControl};
pub use state::ControlState;
pub use unit::{generate, AnchorControl, ControlStyle, ControlUnit, EnableTerm};
