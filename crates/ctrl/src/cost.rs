use std::fmt;

/// Hardware cost of a control implementation.
///
/// The paper observes the counter/shift-register trade-off qualitatively
/// (§VI: comparator logic vs. register count); this struct quantifies it
/// with a simple technology-independent model:
///
/// * a register bit costs [`ControlCost::REGISTER_WEIGHT`] gate
///   equivalents;
/// * a comparator costs ~2 gate equivalents per compared bit;
/// * an AND-tree costs one gate equivalent per input beyond the first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlCost {
    /// Total flip-flops (counter bits or shift-register stages).
    pub register_bits: u64,
    /// Number of magnitude comparators (counter style only).
    pub comparators: u64,
    /// Total compared bits across all comparators.
    pub comparator_bits: u64,
    /// Total AND-tree inputs across all multi-term enables.
    pub and_inputs: u64,
}

impl ControlCost {
    /// Gate equivalents per flip-flop.
    pub const REGISTER_WEIGHT: u64 = 6;
    /// Gate equivalents per comparator bit.
    pub const COMPARATOR_WEIGHT: u64 = 2;

    /// Combinational-logic gate-equivalent estimate (comparators + AND
    /// trees).
    pub fn logic_estimate(&self) -> u64 {
        self.comparator_bits * Self::COMPARATOR_WEIGHT + self.and_inputs.saturating_sub(1)
    }

    /// Sequential gate-equivalent estimate (registers).
    pub fn register_estimate(&self) -> u64 {
        self.register_bits * Self::REGISTER_WEIGHT
    }

    /// Total gate-equivalent estimate.
    pub fn total_estimate(&self) -> u64 {
        self.logic_estimate() + self.register_estimate()
    }
}

impl fmt::Display for ControlCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} FFs, {} comparators ({} bits), {} AND inputs (~{} gate eq.)",
            self.register_bits,
            self.comparators,
            self.comparator_bits,
            self.and_inputs,
            self.total_estimate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_compose() {
        let cost = ControlCost {
            register_bits: 4,
            comparators: 2,
            comparator_bits: 6,
            and_inputs: 5,
        };
        assert_eq!(cost.register_estimate(), 24);
        assert_eq!(cost.logic_estimate(), 16);
        assert_eq!(cost.total_estimate(), 40);
        let text = cost.to_string();
        assert!(text.contains("4 FFs"));
        assert!(text.contains("40 gate eq."));
    }

    #[test]
    fn default_is_free() {
        assert_eq!(ControlCost::default().total_estimate(), 0);
    }
}
