//! FSM / microcode control for the fixed-delay special case.
//!
//! "In the simple case where the hardware model does not contain any
//! unbounded delay operations, the task of control generation reduces to
//! the traditional control synthesis approaches of microprogrammed
//! controllers and FSM's" (§VI). When the only anchor is the source, the
//! relative schedule is a single column of offsets, and the control is a
//! Moore machine whose state counts cycles from activation: each state
//! asserts the start pulses of the operations scheduled at that cycle.
//! The same table read as a ROM is the microprogrammed implementation;
//! [`Fsm::rom_bits`] gives its size.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use rsched_core::RelativeSchedule;
use rsched_graph::{ConstraintGraph, VertexId};

/// Why FSM generation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsmError {
    /// The schedule references anchors besides the source: the start
    /// times are not a single static sequence, so a counter/shift-register
    /// control (relative control) is required instead.
    UnboundedAnchors {
        /// The offending anchors.
        anchors: Vec<VertexId>,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::UnboundedAnchors { anchors } => {
                write!(
                    f,
                    "schedule depends on unbounded anchors {anchors:?}; FSM control requires a fixed-delay design"
                )
            }
        }
    }
}

impl Error for FsmError {}

/// A Moore-machine controller for a fixed-delay schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    /// `starts[s]` = operations whose start pulse is asserted in state `s`.
    starts: Vec<Vec<VertexId>>,
    n_outputs: usize,
}

impl Fsm {
    /// Builds the FSM from a single-anchor (source-only) schedule.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::UnboundedAnchors`] if any vertex tracks an
    /// anchor other than the source.
    pub fn from_schedule(
        graph: &ConstraintGraph,
        schedule: &RelativeSchedule,
    ) -> Result<Self, FsmError> {
        let source = graph.source();
        let mut foreign: Vec<VertexId> = Vec::new();
        for v in graph.vertex_ids() {
            for (a, _) in schedule.offsets_of(v) {
                if a != source && !foreign.contains(&a) {
                    foreign.push(a);
                }
            }
        }
        if !foreign.is_empty() {
            return Err(FsmError::UnboundedAnchors { anchors: foreign });
        }
        let horizon = schedule.max_offset(source).max(0) as usize;
        let mut starts: Vec<Vec<VertexId>> = vec![Vec::new(); horizon + 1];
        let mut n_outputs = 0;
        for v in graph.vertex_ids() {
            if v == source {
                continue;
            }
            if let Some(off) = schedule.offset(v, source) {
                starts[off.max(0) as usize].push(v);
                n_outputs += 1;
            }
        }
        Ok(Fsm { starts, n_outputs })
    }

    /// Number of states (the schedule horizon + 1).
    pub fn n_states(&self) -> usize {
        self.starts.len()
    }

    /// Operations started in state `s`.
    pub fn starts_in(&self, s: usize) -> &[VertexId] {
        &self.starts[s]
    }

    /// Number of controlled operations (output lines).
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Size of the equivalent microcode ROM in bits: one word per state,
    /// one bit per controlled operation.
    pub fn rom_bits(&self) -> usize {
        self.n_states() * self.n_outputs
    }

    /// State register width for an FSM encoding.
    pub fn state_bits(&self) -> usize {
        (usize::BITS - (self.n_states().max(1) - 1).leading_zeros()).max(1) as usize
    }

    /// The microcode ROM: one word per state, one bit per controlled
    /// operation (bit `k` of word `s` = operation `outputs()[k]` starts in
    /// state `s`) — the ROM-based microprogrammed implementation §VI
    /// mentions.
    pub fn rom_words(&self) -> (Vec<VertexId>, Vec<Vec<bool>>) {
        let mut outputs: Vec<VertexId> = self.starts.iter().flatten().copied().collect();
        outputs.sort();
        let words = self
            .starts
            .iter()
            .map(|vs| {
                outputs
                    .iter()
                    .map(|v| vs.contains(v))
                    .collect::<Vec<bool>>()
            })
            .collect();
        (outputs, words)
    }

    /// The start schedule as `(state, vertex)` pulses in state order.
    pub fn pulses(&self) -> impl Iterator<Item = (usize, VertexId)> + '_ {
        self.starts
            .iter()
            .enumerate()
            .flat_map(|(s, vs)| vs.iter().map(move |&v| (s, v)))
    }

    /// A readable state table.
    pub fn describe(&self, graph: &ConstraintGraph) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FSM controller: {} states ({} state bits), {} outputs, ROM {} bits",
            self.n_states(),
            self.state_bits(),
            self.n_outputs,
            self.rom_bits()
        );
        for (s, vs) in self.starts.iter().enumerate() {
            let names: Vec<&str> = vs.iter().map(|&v| graph.vertex(v).name()).collect();
            let _ = writeln!(out, "  state {s:>3}: start {{{}}}", names.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{generate, ControlStyle};
    use rsched_core::schedule;
    use rsched_graph::{ConstraintGraph, ExecDelay};

    fn fixed_chain() -> (ConstraintGraph, Vec<VertexId>) {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("a", ExecDelay::Fixed(2));
        let b = g.add_operation("b", ExecDelay::Fixed(1));
        let c = g.add_operation("c", ExecDelay::Fixed(3));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.polarize().unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn fsm_states_follow_offsets() {
        let (g, vs) = fixed_chain();
        let omega = schedule(&g).unwrap();
        let fsm = Fsm::from_schedule(&g, &omega).unwrap();
        // a at 0; b, c at 2; sink at 5 => 6 states.
        assert_eq!(fsm.n_states(), 6);
        assert_eq!(fsm.starts_in(0), &[vs[0]]);
        assert_eq!(fsm.starts_in(2), &[vs[1], vs[2]]);
        assert!(fsm.starts_in(1).is_empty());
        assert_eq!(fsm.n_outputs(), 4); // a, b, c, sink
        assert_eq!(fsm.rom_bits(), 24);
        assert_eq!(fsm.state_bits(), 3);
    }

    #[test]
    fn fsm_pulses_match_relative_control_under_zero_profile() {
        // The FSM's start pulses must coincide with the cycle at which
        // the relative (counter) control first enables each operation.
        let (g, _) = fixed_chain();
        let omega = schedule(&g).unwrap();
        let fsm = Fsm::from_schedule(&g, &omega).unwrap();
        let unit = generate(&g, &omega, ControlStyle::Counter);
        let mut state = unit.new_state();
        state.assert_done(g.source());
        let mut first_enable = std::collections::HashMap::new();
        for cycle in 0..fsm.n_states() as u64 {
            for v in g.vertex_ids() {
                if state.enable(v) {
                    first_enable.entry(v).or_insert(cycle);
                }
            }
            state.tick();
        }
        for (s, v) in fsm.pulses() {
            assert_eq!(first_enable.get(&v), Some(&(s as u64)), "{v}");
        }
    }

    #[test]
    fn rom_words_encode_the_state_table() {
        let (g, vs) = fixed_chain();
        let omega = schedule(&g).unwrap();
        let fsm = Fsm::from_schedule(&g, &omega).unwrap();
        let (outputs, words) = fsm.rom_words();
        assert_eq!(words.len(), fsm.n_states());
        assert_eq!(outputs.len(), fsm.n_outputs());
        assert_eq!(
            words.iter().flatten().filter(|&&b| b).count(),
            fsm.n_outputs(),
            "each operation starts exactly once"
        );
        // a starts in state 0.
        let a_bit = outputs.iter().position(|&v| v == vs[0]).unwrap();
        assert!(words[0][a_bit]);
        assert!(!words[1][a_bit]);
    }

    #[test]
    fn fsm_refuses_unbounded_designs() {
        let mut g = ConstraintGraph::new();
        let a = g.add_operation("sync", ExecDelay::Unbounded);
        let b = g.add_operation("b", ExecDelay::Fixed(1));
        g.add_dependency(a, b).unwrap();
        g.polarize().unwrap();
        let omega = schedule(&g).unwrap();
        let err = Fsm::from_schedule(&g, &omega).unwrap_err();
        assert!(matches!(err, FsmError::UnboundedAnchors { ref anchors } if anchors == &[a]));
        assert!(err.to_string().contains("unbounded anchors"));
    }

    #[test]
    fn describe_lists_every_state() {
        let (g, _) = fixed_chain();
        let omega = schedule(&g).unwrap();
        let fsm = Fsm::from_schedule(&g, &omega).unwrap();
        let text = fsm.describe(&g);
        assert!(text.contains("6 states"));
        for s in 0..fsm.n_states() {
            assert!(text.contains(&format!("state {s:>3}:")));
        }
    }
}
