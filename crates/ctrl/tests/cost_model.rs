//! Contract tests for the §VI control cost model (`cost.rs`):
//!
//! * scoring is **stable across relabelings** — renaming vertices and
//!   permuting insertion order changes `VertexId`s and name tables but
//!   never the reported hardware cost;
//! * the model **agrees on the paper's worked examples** — exact pinned
//!   costs for Fig. 2/Table II, Fig. 10, and the Fig. 12
//!   control-generation example, in both implementation styles;
//! * restricting to the irredundant anchors (§VI) never raises the cost.

use rsched_core::{schedule, IrredundantAnchors, RelativeSchedule};
use rsched_ctrl::{generate, ControlCost, ControlStyle};
use rsched_designs::paper;
use rsched_graph::{ConstraintGraph, ExecDelay};

const STYLES: [ControlStyle; 2] = [ControlStyle::Counter, ControlStyle::ShiftRegister];

/// Schedules `g` and restricts to the irredundant anchor sets, the input
/// the paper's control generation expects.
fn reduced_schedule(g: &ConstraintGraph) -> RelativeSchedule {
    let omega = schedule(g).expect("paper figure schedules");
    let anchors = IrredundantAnchors::analyze(g).expect("paper figure analyzes");
    omega.restrict(anchors.irredundant.family())
}

fn cost_of(g: &ConstraintGraph, style: ControlStyle) -> ControlCost {
    generate(g, &reduced_schedule(g), style).cost()
}

/// Fig. 2 rebuilt with fresh names and a permuted insertion order: `a`
/// is added last instead of first, and the fixed ops arrive reversed.
fn fig2_relabeled() -> ConstraintGraph {
    let mut g = ConstraintGraph::new();
    let w4 = g.add_operation("w4", ExecDelay::Fixed(1));
    let w3 = g.add_operation("w3", ExecDelay::Fixed(5));
    let w2 = g.add_operation("w2", ExecDelay::Fixed(1));
    let w1 = g.add_operation("w1", ExecDelay::Fixed(2));
    let sync = g.add_operation("sync", ExecDelay::Unbounded);
    let s = g.source();
    g.add_dependency(s, sync).expect("fresh graph");
    g.add_dependency(s, w1).expect("fresh graph");
    g.add_dependency(w1, w2).expect("fresh graph");
    g.add_dependency(sync, w3).expect("fresh graph");
    g.add_dependency(w2, w4).expect("fresh graph");
    g.add_dependency(w3, w4).expect("fresh graph");
    g.add_min_constraint(s, w3, 3).expect("valid constraint");
    g.add_max_constraint(w1, w2, 5).expect("valid constraint");
    g.polarize().expect("polar");
    g
}

/// Fig. 12 rebuilt with the operation first and the anchors swapped.
fn fig12_relabeled() -> ConstraintGraph {
    let mut g = ConstraintGraph::new();
    let op = g.add_operation("op", ExecDelay::Fixed(1));
    let north = g.add_operation("north", ExecDelay::Unbounded);
    let south = g.add_operation("south", ExecDelay::Unbounded);
    g.add_min_constraint(south, op, 3)
        .expect("valid constraint");
    g.add_min_constraint(north, op, 2)
        .expect("valid constraint");
    g.polarize().expect("polar");
    g
}

#[test]
fn cost_is_stable_across_relabelings() {
    let (fig2, _, _) = paper::fig2();
    let (fig12, _, _) = paper::fig12();
    for style in STYLES {
        assert_eq!(
            cost_of(&fig2, style),
            cost_of(&fig2_relabeled(), style),
            "fig2 cost drifted under relabeling ({style:?})"
        );
        assert_eq!(
            cost_of(&fig12, style),
            cost_of(&fig12_relabeled(), style),
            "fig12 cost drifted under relabeling ({style:?})"
        );
    }
}

/// Fig. 12 in the shift-register style, fully hand-derivable: after the
/// irredundant restriction `v` keeps both anchors with `σ_a(v) = 2` and
/// `σ_b(v) = 3`, so the sink taps stages 3 and 4 and the two shift
/// registers hold `3 + 4 = 7` flip-flops total; `v` and the sink each
/// AND two taps.
#[test]
fn fig12_shift_register_cost_matches_hand_derivation() {
    let (g, _, _) = paper::fig12();
    let c = cost_of(&g, ControlStyle::ShiftRegister);
    assert_eq!(
        c,
        ControlCost {
            register_bits: 7,
            comparators: 0,
            comparator_bits: 0,
            and_inputs: 4,
        }
    );
    assert_eq!(c.total_estimate(), 45);
}

/// Fig. 12 in the counter style: 3-bit counters for `a` (σ_max = 3) and
/// `b` (σ_max = 4) plus the 1-bit source counter; six comparators (one
/// per enable term) over 13 magnitude bits.
#[test]
fn fig12_counter_cost_matches_hand_derivation() {
    let (g, _, _) = paper::fig12();
    let c = cost_of(&g, ControlStyle::Counter);
    assert_eq!(
        c,
        ControlCost {
            register_bits: 7,
            comparators: 6,
            comparator_bits: 13,
            and_inputs: 4,
        }
    );
    assert_eq!(c.total_estimate(), 71);
}

/// Fig. 2 / Table II pinned in both styles. The shift-register tally is
/// the Table II column sums: `σ_source^max = 9` (sink) plus
/// `σ_a^max = 6` (sink, via `σ_a(v4) = 5` and `δ(v4) = 1`).
#[test]
fn fig2_costs_match_table2() {
    let (g, _, _) = paper::fig2();
    let counter = cost_of(&g, ControlStyle::Counter);
    assert_eq!(
        counter,
        ControlCost {
            register_bits: 7,
            comparators: 9,
            comparator_bits: 22,
            and_inputs: 6,
        }
    );
    assert_eq!(counter.total_estimate(), 91);
    let shift = cost_of(&g, ControlStyle::ShiftRegister);
    assert_eq!(
        shift,
        ControlCost {
            register_bits: 15,
            comparators: 0,
            comparator_bits: 0,
            and_inputs: 6,
        }
    );
    assert_eq!(shift.total_estimate(), 95);
}

/// Fig. 10 pinned in both styles (offsets cross-checked cell for cell
/// against the paper's table by the `rsched-core` fig10 tests).
#[test]
fn fig10_costs_are_pinned() {
    let (g, _, _) = paper::fig10();
    assert_eq!(cost_of(&g, ControlStyle::Counter).total_estimate(), 101);
    assert_eq!(
        cost_of(&g, ControlStyle::ShiftRegister).total_estimate(),
        111
    );
}

/// §VI: dropping redundant anchors can only shed hardware. The reduced
/// control never costs more than tracking the full anchor sets.
#[test]
fn irredundant_restriction_never_raises_cost() {
    for (name, g) in [
        ("fig2", paper::fig2().0),
        ("fig4", paper::fig4().0),
        ("fig8a", paper::fig8(3).0),
        ("fig8b", paper::fig8(0).0),
        ("fig10", paper::fig10().0),
        ("fig12", paper::fig12().0),
    ] {
        let omega = schedule(&g).expect("paper figure schedules");
        let reduced = reduced_schedule(&g);
        for style in STYLES {
            let full = generate(&g, &omega, style).cost().total_estimate();
            let restricted = generate(&g, &reduced, style).cost().total_estimate();
            assert!(
                restricted <= full,
                "{name} ({style:?}): restriction raised cost {full} -> {restricted}"
            );
        }
    }
}
