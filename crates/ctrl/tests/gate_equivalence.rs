//! Property test: the gate-level synthesis of a control unit is
//! cycle-for-cycle equivalent to the behavioural model, for random
//! schedules, both styles, and random done-event timings.

use proptest::prelude::*;

use rsched_core::schedule;
use rsched_ctrl::{generate, synthesize, ControlStyle, LogicSim};
use rsched_graph::{ConstraintGraph, ExecDelay, VertexId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn gates_equal_behavioural_model(
        delays in proptest::collection::vec(
            prop_oneof![2 => (0u64..4).prop_map(Some), 1 => Just(None)], 2..8),
        edges in proptest::collection::vec((0usize..8, 0usize..8), 1..10),
        mins in proptest::collection::vec((0usize..8, 0usize..8, 0u64..5), 0..3),
        done_offsets in proptest::collection::vec(0u64..8, 10),
    ) {
        let mut g = ConstraintGraph::new();
        let vs: Vec<VertexId> = delays.iter().enumerate().map(|(i, d)| {
            g.add_operation(format!("op{i}"), match d {
                Some(d) => ExecDelay::Fixed(*d),
                None => ExecDelay::Unbounded,
            })
        }).collect();
        let n = vs.len();
        for &(i, j) in &edges {
            if i < j && j < n {
                g.add_dependency(vs[i], vs[j]).unwrap();
            }
        }
        for &(i, j, l) in &mins {
            if i < j && j < n {
                g.add_min_constraint(vs[i], vs[j], l).unwrap();
            }
        }
        g.polarize().unwrap();
        let Ok(omega) = schedule(&g) else { return Ok(()); };

        for style in [ControlStyle::Counter, ControlStyle::ShiftRegister] {
            let unit = generate(&g, &omega, style);
            let synth = synthesize(&unit);
            let mut logic = LogicSim::new(synth.netlist.clone());
            let mut model = unit.new_state();
            // Random single-cycle done pulses per anchor (source at 0).
            let anchors = g.anchors();
            let done_at: Vec<(VertexId, u64)> = anchors
                .iter()
                .enumerate()
                .map(|(k, &a)| {
                    (a, if a == g.source() { 0 } else { done_offsets[k % done_offsets.len()] })
                })
                .collect();
            for cycle in 0..20u64 {
                for &(a, at) in &done_at {
                    let fire = at == cycle;
                    if fire {
                        model.assert_done(a);
                    }
                    logic.set(synth.done_net(a).expect("anchor input"), fire);
                }
                logic.settle();
                for v in g.vertex_ids() {
                    prop_assert_eq!(
                        logic.get(synth.enable_net(v).expect("enable")),
                        model.enable(v),
                        "style {:?}, cycle {}, vertex {}", style, cycle, v
                    );
                }
                logic.tick();
                model.tick();
            }
        }
    }
}
