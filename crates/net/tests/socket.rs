//! End-to-end socket tests: real TCP/unix round trips against a live
//! [`NetServer`], quota enforcement, fault injection on the accept path,
//! and clean shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::thread;
use std::time::{Duration, Instant};

use rsched_engine::json::Json;
use rsched_graph::failpoint::{self, FailAction};
use rsched_net::{poll, Listen, NetConfig, NetServer, NetSummary};

const DESIGN: &str =
    "op sync unbounded\nop alu 2\nop out 1\ndep sync alu\ndep alu out\nmax alu out 4\n";

/// A blocking line-oriented client over any socket stream.
struct Client<S: std::io::Read + Write> {
    reader: BufReader<S>,
    writer: S,
}

impl Client<TcpStream> {
    fn connect_tcp(listen: &Listen) -> Client<TcpStream> {
        let Listen::Tcp(addr) = listen else {
            panic!("expected tcp listen address")
        };
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }
}

impl Client<UnixStream> {
    fn connect_unix(listen: &Listen) -> Client<UnixStream> {
        let Listen::Unix(path) = listen else {
            panic!("expected unix listen path")
        };
        let stream = UnixStream::connect(path).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }
}

impl<S: std::io::Read + Write> Client<S> {
    // One write per frame: a separate 1-byte `\n` write can be held back
    // by Nagle waiting on the delayed ACK of the body segment (~40ms on
    // loopback), leaving the server with a partial frame mid-test.
    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed connection before responding");
        Json::parse(line.trim_end()).expect("response is json")
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn spawn_server(
    config: NetConfig,
) -> (
    Listen,
    rsched_net::ShutdownHandle,
    thread::JoinHandle<NetSummary>,
) {
    let server = NetServer::bind(config).expect("bind");
    let listen = server.local_addr().clone();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("run"));
    (listen, handle, join)
}

fn loopback_config() -> NetConfig {
    let mut config = NetConfig::new(Listen::parse("127.0.0.1:0").unwrap());
    config.engine.workers = 2;
    config
}

fn open_line(session: &str, id: u32) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"open\",\"session\":\"{session}\",\"design\":{}}}",
        Json::Str(DESIGN.to_owned()).render()
    )
}

#[test]
fn tcp_round_trip_matches_stdio_shapes() {
    let (listen, handle, join) = spawn_server(loopback_config());
    let mut client = Client::connect_tcp(&listen);

    let open = client.round_trip(&open_line("s1", 1));
    assert_eq!(open.get("id"), Some(&Json::Int(1)));
    assert_eq!(open.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        open.get("verdict").and_then(Json::as_str),
        Some("well-posed")
    );

    let edit = client.round_trip(
        "{\"id\":2,\"op\":\"edit\",\"session\":\"s1\",\"kind\":\"set_delay\",\"vertex\":\"alu\",\"delay\":3}",
    );
    assert_eq!(edit.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        edit.get("outcome").and_then(Json::as_str),
        Some("rescheduled")
    );

    let schedule = client.round_trip("{\"id\":3,\"op\":\"schedule\",\"session\":\"s1\"}");
    assert_eq!(schedule.get("ok"), Some(&Json::Bool(true)));
    let offsets = schedule.get("offsets").expect("offsets");
    assert_eq!(
        offsets
            .get("out")
            .and_then(|row| row.get("sync"))
            .and_then(Json::as_i64),
        Some(3),
        "out trails the sync anchor by delay(alu)=3: {schedule:?}"
    );

    // Unknown op and malformed JSON are answered in-band, same shapes as
    // the stdio loop produces.
    let unknown = client.round_trip("{\"id\":4,\"op\":\"warp\"}");
    assert_eq!(unknown.get("ok"), Some(&Json::Bool(false)));
    let garbage = client.round_trip("{not json");
    assert_eq!(garbage.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(garbage.get("id"), Some(&Json::Null));

    let close = client.round_trip("{\"id\":5,\"op\":\"close\",\"session\":\"s1\"}");
    assert_eq!(close.get("ok"), Some(&Json::Bool(true)));

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.requests, 6);
    assert_eq!(summary.sessions_opened, 1);
    assert_eq!(summary.errors, 2);
    assert_eq!(summary.quota_rejections, 0);
}

#[test]
fn unix_socket_round_trips_and_removes_socket_file() {
    let dir = std::env::temp_dir().join(format!("rsched-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("serve.sock");
    let mut config = loopback_config();
    config.listen = Listen::parse(path.to_str().unwrap()).unwrap();

    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_unix(&listen);
    let open = client.round_trip(&open_line("u1", 1));
    assert_eq!(open.get("ok"), Some(&Json::Bool(true)));
    let stats = client.round_trip("{\"id\":2,\"op\":\"stats\",\"session\":\"u1\"}");
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.requests, 2);
    assert!(!path.exists(), "socket file removed after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_connections_share_and_isolate_sessions() {
    let (listen, handle, join) = spawn_server(loopback_config());

    // Two clients, disjoint sessions, interleaved over real sockets.
    let mut a = Client::connect_tcp(&listen);
    let mut b = Client::connect_tcp(&listen);
    assert_eq!(
        a.round_trip(&open_line("a", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    assert_eq!(
        b.round_trip(&open_line("b", 1)).get("ok"),
        Some(&Json::Bool(true))
    );

    // Session "a" is visible from connection b too — sessions are server
    // state, pinned to a shard, not connection state.
    let cross = b.round_trip("{\"id\":2,\"op\":\"schedule\",\"session\":\"a\"}");
    assert_eq!(cross.get("ok"), Some(&Json::Bool(true)));

    // But an unknown session still errors.
    let missing = a.round_trip("{\"id\":3,\"op\":\"schedule\",\"session\":\"ghost\"}");
    assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));

    drop(a);
    drop(b);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.connections, 2);
    assert_eq!(summary.sessions_opened, 2);
}

#[test]
fn session_quota_rejects_in_band_and_close_frees_slot() {
    let mut config = loopback_config();
    config.max_sessions_per_conn = Some(1);
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);

    assert_eq!(
        client.round_trip(&open_line("q1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    let rejected = client.round_trip(&open_line("q2", 2));
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(rejected.get("id"), Some(&Json::Int(2)));
    assert_eq!(
        rejected.get("error").and_then(Json::as_str),
        Some("quota exceeded: connection already holds 1 session(s)")
    );

    // Re-opening the *held* session is a replace, not a new slot.
    assert_eq!(
        client.round_trip(&open_line("q1", 3)).get("ok"),
        Some(&Json::Bool(true))
    );

    // Closing frees the slot for a different session.
    assert_eq!(
        client
            .round_trip("{\"id\":4,\"op\":\"close\",\"session\":\"q1\"}")
            .get("ok"),
        Some(&Json::Bool(true))
    );
    assert_eq!(
        client.round_trip(&open_line("q2", 5)).get("ok"),
        Some(&Json::Bool(true))
    );

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.quota_rejections, 1);
    assert_eq!(summary.sessions_opened, 3);
}

#[test]
fn inflight_quota_rejects_excess_pipelining() {
    let mut config = loopback_config();
    config.max_inflight_per_conn = Some(1);
    // One worker whose every job stalls briefly, so a burst of pipelined
    // requests reliably has one in flight when the next arrives.
    config.engine.workers = 1;
    let scope = 0x6e657401u64;
    config.engine.fault_scope = Some(scope);
    let _delay = failpoint::arm(
        "serve::handle",
        Some(scope),
        FailAction::Delay(std::time::Duration::from_millis(40)),
        0,
        None,
    );

    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);

    client.send(&open_line("p1", 1));
    client.send("{\"id\":2,\"op\":\"schedule\",\"session\":\"p1\"}");
    client.send("{\"id\":3,\"op\":\"schedule\",\"session\":\"p1\"}");

    // All three are answered; at least one of the trailing pair was
    // rejected by the in-flight quota while an earlier one executed.
    let responses: Vec<Json> = (0..3).map(|_| client.recv()).collect();
    let rejected: Vec<&Json> = responses
        .iter()
        .filter(|r| {
            r.get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.starts_with("quota exceeded:"))
        })
        .collect();
    assert!(
        !rejected.is_empty(),
        "expected an in-flight quota rejection: {responses:?}"
    );
    for r in &rejected {
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    }

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.quota_rejections, rejected.len());
    assert_eq!(summary.requests, 3);
}

#[test]
fn accept_faults_answer_in_band_and_keep_listening() {
    let mut config = loopback_config();
    let scope = 0x6e657402u64;
    config.engine.fault_scope = Some(scope);
    // First connection gets an injected accept error, second a panic on
    // the accept path, third proceeds normally.
    let _err = failpoint::arm(
        "net::accept",
        Some(scope),
        FailAction::Error("accept sabotage".to_owned()),
        0,
        Some(1),
    );
    // skip 0: exhausted entries are passed over, so once the error guard
    // is spent the panic guard fires on the very next evaluation.
    let _panic = failpoint::arm("net::accept", Some(scope), FailAction::Panic, 0, Some(1));

    let (listen, handle, join) = spawn_server(config);

    // Connection 1: answered in-band with the injected error, then closed.
    let mut c1 = Client::connect_tcp(&listen);
    let line = {
        let mut line = String::new();
        c1.reader.read_line(&mut line).expect("read");
        line
    };
    let fault = Json::parse(line.trim_end()).expect("fault line is json");
    assert_eq!(fault.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        fault.get("error").and_then(Json::as_str),
        Some("injected fault: accept sabotage")
    );

    // Connection 2: dropped by the injected panic — clean EOF or a reset
    // (the server may close before our send drains), never a response.
    let mut c2 = Client::connect_tcp(&listen);
    // Best-effort send: the server may already have dropped us.
    let _ = c2.writer.write_all(open_line("f1", 1).as_bytes());
    let _ = c2.writer.write_all(b"\n");
    let _ = c2.writer.flush();
    let mut line = String::new();
    let n = c2.reader.read_line(&mut line).unwrap_or(0);
    assert_eq!(n, 0, "panicked accept drops the connection: {line:?}");

    // Connection 3: business as usual.
    let mut c3 = Client::connect_tcp(&listen);
    assert_eq!(
        c3.round_trip(&open_line("f2", 1)).get("ok"),
        Some(&Json::Bool(true))
    );

    drop(c1);
    drop(c2);
    drop(c3);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.accept_faults, 2);
    assert_eq!(summary.connections, 3);
    assert_eq!(summary.sessions_opened, 1);
}

#[test]
fn worker_kill_mid_stream_loses_no_requests() {
    let mut config = loopback_config();
    config.engine.workers = 1;
    let scope = 0x6e657403u64;
    config.engine.fault_scope = Some(scope);
    // Kill the shard worker on its 3rd pass over the kill site; the
    // supervisor must respawn it and answer everything.
    let _kill = failpoint::arm(
        "serve::worker_kill",
        Some(scope),
        FailAction::Panic,
        2,
        Some(1),
    );

    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);
    assert_eq!(
        client.round_trip(&open_line("k1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    for i in 2..=12 {
        let response = client.round_trip(&format!(
            "{{\"id\":{i},\"op\":\"edit\",\"session\":\"k1\",\"kind\":\"set_delay\",\"vertex\":\"alu\",\"delay\":{}}}",
            1 + (i % 3)
        ));
        assert_eq!(
            response.get("id"),
            Some(&Json::Int(i as i64)),
            "request {i} answered in order: {response:?}"
        );
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "request {i} succeeded: {response:?}"
        );
    }

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.requests, 12);
    assert!(
        summary.shards_respawned >= 1,
        "the killed shard respawned: {summary:?}"
    );
}

#[test]
fn rst_abort_frees_connection_state_and_generation_guards_reuse() {
    let mut config = loopback_config();
    config.max_sessions_per_conn = Some(1);
    config.engine.workers = 1;
    // Stall the worker so the RST lands while a request is in flight:
    // its completion must be dropped by the generation check, never
    // delivered to whoever reuses the slab slot.
    let scope = 0x6e657404u64;
    config.engine.fault_scope = Some(scope);
    let _delay = failpoint::arm(
        "serve::handle",
        Some(scope),
        FailAction::Delay(Duration::from_millis(60)),
        0,
        None,
    );

    let (listen, handle, join) = spawn_server(config);
    let mut victim = Client::connect_tcp(&listen);
    victim.send(&open_line("r1", 1));
    // Give the event loop a beat to read and dispatch the frame (the
    // worker is still inside its 60 ms stall when the RST lands).
    thread::sleep(Duration::from_millis(20));
    // Abort with an RST (not a FIN) — exactly like a dying client.
    poll::set_linger_abort(&victim.writer).expect("linger");
    drop(victim);

    // The replacement connection almost certainly reuses slab slot 0.
    // Its quota must start fresh, and the dead connection's completion
    // must not leak into this stream.
    let mut fresh = Client::connect_tcp(&listen);
    let open = fresh.round_trip(&open_line("r2", 10));
    assert_eq!(open.get("id"), Some(&Json::Int(10)));
    assert_eq!(open.get("ok"), Some(&Json::Bool(true)));
    // One session already held; the per-connection cap of 1 applies to
    // *this* connection's holdings only, so a second distinct session is
    // the first rejection.
    let rejected = fresh.round_trip(&open_line("r3", 11));
    assert_eq!(
        rejected.get("error").and_then(Json::as_str),
        Some("quota exceeded: connection already holds 1 session(s)")
    );
    // The RST'd connection's session survived server-side (sessions are
    // server state): re-opening it from the fresh connection is a
    // replace of... a different connection's former holding, i.e. a new
    // slot for us — and it was our cap, so close r2 first.
    assert_eq!(
        fresh
            .round_trip("{\"id\":12,\"op\":\"close\",\"session\":\"r2\"}")
            .get("ok"),
        Some(&Json::Bool(true))
    );
    let reopened = fresh.round_trip("{\"id\":13,\"op\":\"schedule\",\"session\":\"r1\"}");
    assert_eq!(
        reopened.get("ok"),
        Some(&Json::Bool(true)),
        "session opened by the RST'd connection is still served: {reopened:?}"
    );

    drop(fresh);
    handle.shutdown();
    // Shutdown returning at all proves the aborted connection was reaped
    // (drain waits for live connections and there is no drain timeout).
    let summary = join.join().expect("server thread");
    assert_eq!(summary.connections, 2);
}

#[test]
fn oversize_frame_rejected_in_band_and_connection_lives() {
    let mut config = loopback_config();
    config.max_frame_bytes = 1024;
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);

    // 4 KiB of junk on one line: rejected with the exact shape, without
    // buffering the line.
    let mut big = vec![b'x'; 4096];
    big.push(b'\n');
    client.writer.write_all(&big).expect("write");
    client.writer.flush().expect("flush");
    let response = client.recv();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(response.get("id"), Some(&Json::Null));
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("oversize frame: exceeds 1024 byte cap")
    );

    // The same connection keeps working.
    assert_eq!(
        client.round_trip(&open_line("o1", 2)).get("ok"),
        Some(&Json::Bool(true))
    );

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.oversize_frames, 1);
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.errors, 1);
}

#[test]
fn binary_junk_and_nul_frames_answered_in_band() {
    let (listen, handle, join) = spawn_server(loopback_config());
    let mut client = Client::connect_tcp(&listen);

    // Invalid UTF-8 inside the frame: the exact in-band shape the stdio
    // loop produces for the same bytes.
    client
        .writer
        .write_all(b"{\"id\":1,\"op\":\"stats\"\xC3\x28}\n")
        .expect("write");
    client.writer.flush().expect("flush");
    let response = client.recv();
    assert_eq!(response.get("id"), Some(&Json::Null));
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("malformed request: frame is not valid UTF-8")
    );

    // NUL bytes are valid UTF-8 but hostile JSON: a malformed-request
    // error, and the connection lives.
    client.writer.write_all(b"\x00\x00\x00\n").expect("write");
    client.writer.flush().expect("flush");
    let response = client.recv();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.starts_with("malformed request:")),
        "{response:?}"
    );

    assert_eq!(
        client.round_trip(&open_line("j1", 3)).get("ok"),
        Some(&Json::Bool(true))
    );

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.errors, 2);
}

#[test]
fn frames_split_at_every_byte_boundary_still_parse() {
    let (listen, handle, join) = spawn_server(loopback_config());

    // One frame dribbled a byte at a time exercises every boundary
    // within a frame.
    let mut client = Client::connect_tcp(&listen);
    let frame = format!("{}\n", open_line("t1", 1));
    for byte in frame.as_bytes() {
        client
            .writer
            .write_all(std::slice::from_ref(byte))
            .expect("write");
        client.writer.flush().expect("flush");
    }
    assert_eq!(client.recv().get("ok"), Some(&Json::Bool(true)));

    // A two-frame pipeline split at every boundary exercises carries
    // across the newline: the tail of one read starting the next frame.
    let double = format!(
        "{}\n{{\"id\":2,\"op\":\"schedule\",\"session\":\"t1\"}}\n",
        open_line("t1", 1)
    );
    let bytes = double.as_bytes();
    for cut in 1..bytes.len() {
        client.writer.write_all(&bytes[..cut]).expect("write");
        client.writer.flush().expect("flush");
        client.writer.write_all(&bytes[cut..]).expect("write");
        client.writer.flush().expect("flush");
        let first = client.recv();
        assert_eq!(first.get("id"), Some(&Json::Int(1)), "cut {cut}: {first:?}");
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "cut {cut}");
        let second = client.recv();
        assert_eq!(
            second.get("id"),
            Some(&Json::Int(2)),
            "cut {cut}: {second:?}"
        );
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "cut {cut}");
    }

    drop(client);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn health_op_reports_shard_liveness_and_connection_counters() {
    let mut config = loopback_config();
    config.engine.workers = 3;
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);
    let _idle = Client::connect_tcp(&listen);

    let health = client.round_trip("{\"id\":1,\"op\":\"health\"}");
    assert_eq!(health.get("id"), Some(&Json::Int(1)));
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    let body = health.get("health").expect("health block");
    assert_eq!(body.get("shards"), Some(&Json::Int(3)));
    assert_eq!(body.get("panics"), Some(&Json::Int(0)));
    let net = body.get("net").expect("net block");
    assert_eq!(
        net.get("connections"),
        Some(&Json::Int(2)),
        "both live connections counted: {health:?}"
    );
    assert_eq!(net.get("draining"), Some(&Json::Bool(false)));
    assert_eq!(net.get("evicted_idle"), Some(&Json::Int(0)));
    assert_eq!(net.get("evicted_deadline"), Some(&Json::Int(0)));
    assert_eq!(net.get("evicted_slow"), Some(&Json::Int(0)));
    assert_eq!(net.get("oversize_frames"), Some(&Json::Int(0)));

    drop(client);
    drop(_idle);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.requests, 1);
}

/// A linear chain of `n` unbounded ops: every op is an anchor, so the
/// offsets matrix is O(n²) — a compact way to make schedule responses
/// large enough to overwhelm socket buffers.
fn anchor_chain(n: usize) -> String {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("op a{i} unbounded\n"));
    }
    for i in 1..n {
        text.push_str(&format!("dep a{} a{i}\n", i - 1));
    }
    text
}

#[test]
fn slow_consumer_is_evicted_at_write_buffer_cap() {
    let mut config = loopback_config();
    config.write_buf_cap = 64 * 1024;
    // Enough queue for the whole pipelined burst — shed responses are
    // tiny and would dilute the volume this test needs.
    config.engine.queue_depth = 4096;
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);

    let design = anchor_chain(60);
    assert_eq!(
        client
            .round_trip(&format!(
                "{{\"id\":1,\"op\":\"open\",\"session\":\"w1\",\"design\":{}}}",
                Json::Str(design).render()
            ))
            .get("ok"),
        Some(&Json::Bool(true))
    );
    // Pipeline many huge-response requests and then go silent — never
    // reading a byte. The combined response volume (≈16 KiB × 1200)
    // dwarfs what loopback socket buffers can absorb even fully
    // autotuned (≈10 MiB), so the server-side write buffer must fill
    // and trip the cap.
    for i in 2..=1201 {
        client.send(&format!(
            "{{\"id\":{i},\"op\":\"schedule\",\"session\":\"w1\"}}"
        ));
    }
    // A second connection watches the eviction land via `health`.
    let mut watcher = Client::connect_tcp(&listen);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let health = watcher.round_trip("{\"id\":1,\"op\":\"health\"}");
        let evicted = health
            .get("health")
            .and_then(|h| h.get("net"))
            .and_then(|n| n.get("evicted_slow"))
            .and_then(Json::as_i64);
        if evicted == Some(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no slow-consumer eviction within 60s: {health:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }
    // The victim's socket was closed out from under it: reads drain
    // whatever the kernel buffered, then end (EOF or RST).
    client
        .writer
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut sink = Vec::new();
    let _ = client.reader.get_mut().read_to_end(&mut sink);

    drop(client);
    drop(watcher);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(
        summary.evicted_slow, 1,
        "the stalled reader was evicted at the write-buffer cap: {summary:?}"
    );
}

#[test]
fn idle_connection_is_evicted_after_timeout() {
    let mut config = loopback_config();
    config.idle_timeout = Some(Duration::from_millis(150));
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);

    // Activity resets the clock; the eviction fires only after silence.
    assert_eq!(
        client.round_trip(&open_line("i1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    let started = Instant::now();
    let mut tail = String::new();
    client
        .reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client.reader.read_to_string(&mut tail).expect("notice+eof");
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "evicted only after the idle window"
    );
    let notice = Json::parse(tail.lines().next().expect("notice")).expect("json");
    assert_eq!(
        notice.get("error").and_then(Json::as_str),
        Some("evicted: idle timeout")
    );

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.evicted_idle, 1);
    assert_eq!(summary.requests, 1);
}

#[test]
fn slow_loris_partial_frame_is_evicted_at_read_deadline() {
    let mut config = loopback_config();
    config.read_deadline = Some(Duration::from_millis(150));
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect_tcp(&listen);

    // A complete frame is unaffected by the read deadline.
    assert_eq!(
        client.round_trip(&open_line("l1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    // Half a frame, then silence.
    client.writer.write_all(b"{\"id\":2,\"op\"").expect("write");
    client.writer.flush().expect("flush");
    let started = Instant::now();
    let mut tail = String::new();
    client
        .reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client.reader.read_to_string(&mut tail).expect("notice+eof");
    assert!(started.elapsed() >= Duration::from_millis(100));
    let notice = Json::parse(tail.lines().next().expect("notice")).expect("json");
    assert_eq!(
        notice.get("error").and_then(Json::as_str),
        Some("evicted: read deadline exceeded on a partial frame")
    );

    drop(client);
    handle.shutdown();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.evicted_deadline, 1);
    assert_eq!(summary.evicted_idle, 0);
}
