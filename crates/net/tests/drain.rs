//! Graceful-drain lifecycle tests: in-flight requests answered, idle
//! connections told `going_away`, the drain-timeout hard cutoff, WAL
//! durability across a drain-then-restart, and SIGTERM as a drain
//! trigger.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use rsched_engine::json::Json;
use rsched_graph::failpoint::{self, FailAction};
use rsched_net::{poll, Listen, NetConfig, NetServer, NetSummary};

const DESIGN: &str =
    "op sync unbounded\nop alu 2\nop out 1\ndep sync alu\ndep alu out\nmax alu out 4\n";

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(listen: &Listen) -> Client {
        let Listen::Tcp(addr) = listen else {
            panic!("expected tcp listen address")
        };
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    // One write per frame: a separate 1-byte `\n` write can be held back
    // by Nagle waiting on the delayed ACK of the body segment (~40ms on
    // loopback), which makes "the frame is in flight" racy in tests.
    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed connection before responding");
        Json::parse(line.trim_end()).expect("response is json")
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }

    /// Reads to end-of-stream and returns the remaining full lines.
    fn drain_lines(&mut self) -> Vec<Json> {
        let mut tail = String::new();
        self.reader.read_to_string(&mut tail).expect("eof");
        tail.lines()
            .map(|l| Json::parse(l.trim_end()).expect("line is json"))
            .collect()
    }
}

fn spawn_server(
    config: NetConfig,
) -> (
    Listen,
    rsched_net::ShutdownHandle,
    thread::JoinHandle<NetSummary>,
) {
    let server = NetServer::bind(config).expect("bind");
    let listen = server.local_addr().clone();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("run"));
    (listen, handle, join)
}

fn loopback_config() -> NetConfig {
    let mut config = NetConfig::new(Listen::parse("127.0.0.1:0").unwrap());
    config.engine.workers = 1;
    config
}

fn open_line(session: &str, id: u32) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"open\",\"session\":\"{session}\",\"design\":{}}}",
        Json::Str(DESIGN.to_owned()).render()
    )
}

#[test]
fn drain_answers_inflight_then_notifies_and_closes() {
    let mut config = loopback_config();
    // Stall every request after the open, so shutdown reliably lands
    // while one is in flight.
    let scope = 0x64726101u64;
    config.engine.fault_scope = Some(scope);
    let _delay = failpoint::arm(
        "serve::handle",
        Some(scope),
        FailAction::Delay(Duration::from_millis(150)),
        1,
        None,
    );

    let (listen, handle, join) = spawn_server(config);
    let mut busy = Client::connect(&listen);
    let mut idle = Client::connect(&listen);
    assert_eq!(
        busy.round_trip(&open_line("d1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    busy.send("{\"id\":2,\"op\":\"schedule\",\"session\":\"d1\"}");
    // Let the event loop dispatch the schedule before draining.
    thread::sleep(Duration::from_millis(40));
    handle.shutdown();
    // Idempotent: a second shutdown (any thread) is a no-op.
    handle.shutdown();

    // The in-flight request is answered, then the drain notice, then EOF.
    let mut lines = busy.drain_lines();
    assert_eq!(lines.len(), 2, "answer + notice: {lines:?}");
    let answer = lines.remove(0);
    assert_eq!(answer.get("id"), Some(&Json::Int(2)));
    assert_eq!(answer.get("ok"), Some(&Json::Bool(true)));
    let notice = lines.remove(0);
    assert_eq!(
        notice.get("error").and_then(Json::as_str),
        Some("going_away: server draining")
    );

    // The idle connection gets the notice straight away.
    let lines = idle.drain_lines();
    assert_eq!(lines.len(), 1, "notice only: {lines:?}");
    assert_eq!(
        lines[0].get("error").and_then(Json::as_str),
        Some("going_away: server draining")
    );

    // New connections are refused (or, if they raced into the backlog
    // before the listener closed, dropped unanswered).
    let refused = match &listen {
        Listen::Tcp(addr) => match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("timeout");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).map(|n| n == 0).unwrap_or(true)
            }
        },
        Listen::Unix(_) => unreachable!(),
    };
    assert!(refused, "draining server accepted a new connection");

    let summary = join.join().expect("server thread");
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.going_away_sent, 2);
    assert_eq!(summary.drain_cutoffs, 0);
}

#[test]
fn drain_timeout_cuts_off_stragglers() {
    let mut config = loopback_config();
    config.drain_timeout = Some(Duration::from_millis(100));
    // The open is fast; the next request stalls far past the cutoff.
    let scope = 0x64726102u64;
    config.engine.fault_scope = Some(scope);
    let _delay = failpoint::arm(
        "serve::handle",
        Some(scope),
        FailAction::Delay(Duration::from_millis(600)),
        1,
        None,
    );

    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect(&listen);
    assert_eq!(
        client.round_trip(&open_line("c1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    client.send("{\"id\":2,\"op\":\"schedule\",\"session\":\"c1\"}");
    thread::sleep(Duration::from_millis(40));
    let drained_at = Instant::now();
    handle.shutdown();

    // The straggler is force-closed at the cutoff: reads end without the
    // schedule answer and without a going_away (it still owed a
    // response, so it never reached the notify-idle state).
    let mut tail = String::new();
    let _ = client.reader.read_to_string(&mut tail);
    assert_eq!(tail, "", "cutoff drops the unanswered straggler: {tail:?}");
    assert!(
        drained_at.elapsed() < Duration::from_millis(450),
        "connection was cut off at the drain timeout, not held to the \
         worker's 600ms stall"
    );

    let summary = join.join().expect("server thread");
    assert_eq!(summary.drain_cutoffs, 1);
    assert_eq!(summary.going_away_sent, 0);
    assert_eq!(summary.requests, 1);
}

#[test]
fn drain_flushes_wal_and_restart_recovers_sessions() {
    let dir = std::env::temp_dir().join(format!("rsched-drain-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let mut config = loopback_config();
    config.engine.workers = 2;
    config.engine.journal_dir = Some(dir.clone());

    // First life: open, edit, capture the schedule, drain.
    let (listen, handle, join) = spawn_server(config.clone());
    let mut client = Client::connect(&listen);
    assert_eq!(
        client.round_trip(&open_line("w1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    assert_eq!(
        client
            .round_trip(
                "{\"id\":2,\"op\":\"edit\",\"session\":\"w1\",\"kind\":\"set_delay\",\
                 \"vertex\":\"alu\",\"delay\":3}"
            )
            .get("ok"),
        Some(&Json::Bool(true))
    );
    let before = client.round_trip("{\"id\":3,\"op\":\"schedule\",\"session\":\"w1\"}");
    assert_eq!(before.get("ok"), Some(&Json::Bool(true)));
    let offsets_before = before.get("offsets").cloned().expect("offsets");
    handle.shutdown();
    let _ = client.drain_lines();
    drop(client);
    join.join().expect("server thread");

    // Second life, same journal dir: the session is rebuilt from the WAL
    // the drain flushed, with a bit-identical schedule.
    let (listen, handle, join) = spawn_server(config);
    let mut client = Client::connect(&listen);
    let after = client.round_trip("{\"id\":4,\"op\":\"schedule\",\"session\":\"w1\"}");
    assert_eq!(
        after.get("ok"),
        Some(&Json::Bool(true)),
        "restarted server recovered the session: {after:?}"
    );
    assert_eq!(
        after.get("offsets"),
        Some(&offsets_before),
        "recovered schedule is bit-identical to the pre-drain one"
    );
    drop(client);
    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_triggers_graceful_drain() {
    let mut server = NetServer::bind(loopback_config()).expect("bind");
    server.install_sigterm_drain();
    let listen = server.local_addr().clone();
    let join = thread::spawn(move || server.run().expect("run"));

    let mut client = Client::connect(&listen);
    assert_eq!(
        client.round_trip(&open_line("t1", 1)).get("ok"),
        Some(&Json::Bool(true))
    );
    poll::raise_sigterm();

    // The signal lands as an ordinary wakeup: notice, then EOF.
    let lines = client.drain_lines();
    assert_eq!(lines.len(), 1, "notice only: {lines:?}");
    assert_eq!(
        lines[0].get("error").and_then(Json::as_str),
        Some("going_away: server draining")
    );
    let summary = join.join().expect("server thread");
    assert_eq!(summary.going_away_sent, 1);
    assert_eq!(summary.requests, 1);
}
