//! Raw readiness-I/O bindings: the one `unsafe` module in the
//! workspace.
//!
//! The repo vendors no crates, so the epoll(7) surface the connection
//! runtime needs is declared here directly against libc symbols (which
//! `std` already links), following the same shim convention as
//! `shim-rand`/`shim-criterion`: the smallest API that serves the
//! workload, wrapped in safe types, with everything above this module
//! staying `#![deny(unsafe_code)]`-clean.
//!
//! What lives here:
//!
//! - [`Poller`] — an `epoll` instance: level-triggered readiness for
//!   thousands of registered sockets with `O(ready)` wakeups (a
//!   `poll(2)` array would re-scan all 10k idle fds on every active
//!   round trip and blow the latency budget).
//! - [`WakePipe`] — a non-blocking self-pipe registered in the poll
//!   set, so shard workers (and signal handlers) can nudge the event
//!   loop out of `epoll_wait` without the old throwaway-connection
//!   hack.
//! - [`install_sigterm_drain`] / [`sigterm_pending`] — an
//!   async-signal-safe SIGTERM hook (one `write(2)` to the wake pipe
//!   plus an atomic flag) that turns the operator's `kill` into a
//!   graceful drain.
//! - [`set_linger_abort`] — SO_LINGER(0), so the chaos fuzzer can
//!   produce genuine RSTs (abrupt connection aborts) instead of
//!   orderly FINs.
//!
//! Every wrapper owns its file descriptors and closes them on drop;
//! no raw fd outlives the safe type that minted it.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::time::Duration;

use std::os::raw::{c_int, c_void};

// Linux x86_64 constants (the only target the container builds); kept
// private so a porting change touches exactly this block.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_LINGER: c_int = 13;
const SIGTERM: c_int = 15;

/// `struct epoll_event`; packed on x86_64 (and only there) to match the
/// kernel ABI.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct Linger {
    l_onoff: c_int,
    l_linger: c_int,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    fn raise(signum: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registered fd should be watched for. Level-triggered: the
/// event repeats while the condition holds, so a partially-drained
/// buffer is re-reported — no readiness is ever lost to a short read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would make progress (or the peer closed).
    pub readable: bool,
    /// Report when a write would make progress.
    pub writable: bool,
}

impl Interest {
    const fn bits(self) -> u32 {
        // EPOLLRDHUP distinguishes a half-close from silence even when
        // read interest is paused (backpressure), and EPOLLERR/EPOLLHUP
        // are always reported by the kernel regardless of the mask.
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// A read would make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// The peer closed its end (EPOLLHUP/EPOLLRDHUP) or the socket is
    /// in an error state (EPOLLERR); the connection is finished either
    /// way once its readable data is drained.
    pub closed: bool,
}

/// A safe epoll instance. Registrations are keyed by caller-chosen
/// `u64` tokens; the poller never dereferences them.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest.bits(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(drop)
    }

    /// Registers `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (already registered, bad fd).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (not registered, bad fd).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Harmless to call for an fd the kernel already
    /// dropped from the set (closing an fd auto-deregisters it).
    pub fn remove(&self, fd: RawFd) {
        let mut event = EpollEvent { events: 0, data: 0 };
        let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) };
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = forever), appending reports to `out`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure; `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        const MAX_EVENTS: usize = 1024;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: c_int = match timeout {
            // Round up so a 1ns deadline does not spin at timeout 0.
            Some(t) => {
                c_int::try_from(t.as_millis().max(1).min(i32::MAX as u128)).expect("clamped above")
            }
            None => -1,
        };
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = unsafe { close(self.epfd) };
    }
}

/// The write end of a wake pipe, cloneable across threads and safe to
/// signal from anywhere (including signal handlers: `write(2)` is
/// async-signal-safe). Writing to a full pipe is fine — the event loop
/// is already scheduled to wake.
#[derive(Clone)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Nudges the owning event loop out of `epoll_wait`.
    pub fn wake(&self) {
        let byte = 1u8;
        // EAGAIN (pipe full) and EPIPE (loop gone) are both "mission
        // accomplished or moot"; nothing to do either way.
        let _ = unsafe { write(self.fd, (&raw const byte).cast(), 1) };
    }
}

/// A non-blocking self-pipe: the read end registers in a [`Poller`],
/// [`Waker`] clones of the write end wake it. Owns both fds.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe (both ends non-blocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `pipe2` failure (fd exhaustion).
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register for read interest in the poll set.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A cloneable handle that wakes the poll loop. Only valid while
    /// this `WakePipe` is alive; waking after drop is a no-op error
    /// that [`Waker::wake`] swallows.
    pub fn waker(&self) -> Waker {
        Waker { fd: self.write_fd }
    }

    /// Drains every pending wake byte so a burst of notifications
    /// collapses into one loop iteration.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return; // Empty (EAGAIN), EOF, or a transient error.
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        let _ = unsafe { close(self.read_fd) };
        let _ = unsafe { close(self.write_fd) };
    }
}

static SIGTERM_PENDING: AtomicBool = AtomicBool::new(false);
static SIGTERM_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn sigterm_handler(_sig: c_int) {
    SIGTERM_PENDING.store(true, Ordering::Release);
    let fd = SIGTERM_WAKE_FD.load(Ordering::Acquire);
    if fd >= 0 {
        let byte = 1u8;
        let _ = unsafe { write(fd, (&raw const byte).cast(), 1) };
    }
}

/// Routes SIGTERM into a graceful drain: the handler sets a flag
/// ([`sigterm_pending`]) and writes one byte to `waker`'s pipe —
/// both async-signal-safe — so the event loop observes the signal as
/// an ordinary wakeup. Process-global; the last installed waker wins,
/// which matches the one-server-per-process CLI deployment.
pub fn install_sigterm_drain(waker: &Waker) {
    SIGTERM_WAKE_FD.store(waker.fd, Ordering::Release);
    unsafe {
        signal(SIGTERM, sigterm_handler);
    }
}

/// `true` once a SIGTERM arrived after [`install_sigterm_drain`].
pub fn sigterm_pending() -> bool {
    SIGTERM_PENDING.load(Ordering::Acquire)
}

/// Sends SIGTERM to the current process — test/harness helper for
/// exercising the drain path without shelling out to `kill`.
pub fn raise_sigterm() {
    unsafe {
        raise(SIGTERM);
    }
}

/// Arms SO_LINGER(0) so closing `stream` aborts the connection with an
/// RST instead of an orderly FIN — the chaos fuzzer's "client died
/// mid-request" fault. (`TcpStream::set_linger` is still unstable in
/// std, hence the raw option.)
///
/// # Errors
///
/// Propagates `setsockopt` failure.
pub fn set_linger_abort(stream: &std::net::TcpStream) -> io::Result<()> {
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    cvt(unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&raw const linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    })
    .map(drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    #[test]
    fn wake_pipe_wakes_and_coalesces() {
        let poller = Poller::new().expect("epoll");
        let pipe = WakePipe::new().expect("pipe");
        poller
            .add(
                pipe.read_fd(),
                7,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .expect("register");

        // No wake: times out with no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());

        // A burst of wakes collapses into one readable report.
        let waker = pipe.waker();
        for _ in 0..5 {
            waker.wake();
        }
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        pipe.drain();

        // Drained: quiet again.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn poller_reports_socket_readiness_and_hangup() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("epoll");
        poller
            .add(
                server.as_raw_fd(),
                42,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .expect("register");

        client.write_all(b"ping").expect("send");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        let mut buf = [0u8; 8];
        let mut server = server;
        assert_eq!(server.read(&mut buf).expect("read"), 4);

        drop(client);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 42 && e.closed),
            "peer close reported: {events:?}"
        );
    }

    #[test]
    fn linger_abort_produces_reset() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        set_linger_abort(&client).expect("linger");
        drop(client); // RST, not FIN.
        let mut buf = [0u8; 8];
        // The read observes the reset as an error (ECONNRESET) rather
        // than a clean EOF. Allow either on slow kernels, but never data.
        match server.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} bytes from a reset connection"),
        }
    }
}
