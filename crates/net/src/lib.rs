//! `rsched-net` — the sharded socket server behind `rsched serve
//! --listen`.
//!
//! The stdio service in `rsched-engine` talks to exactly one client over
//! one byte stream. This crate mounts the very same transport-agnostic
//! [`rsched_engine::Router`] behind a socket listener (TCP or unix
//! domain), accepting many concurrent client connections with the same
//! JSON-lines framing and the same response shapes — a request stream
//! produces **bit-identical** responses whether it arrives over stdio or
//! over a socket, which the oracle crate's net fuzzer checks round by
//! round.
//!
//! # Architecture
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!  clients ──► │ event loop (one thread): epoll readiness,  │
//!              │ accept, per-conn state machines — bounded  │
//!              │ read buf (parse / route / quotas) and      │
//!              │ bounded write buf (backpressure)           │
//!              └──────────────┬─────────────▲───────────────┘
//!                             │ shard queues│ completion queue
//!                             │ (bounded)   │ + wake pipe
//!                             ▼             │
//!              shard worker threads (supervised, respawn on kill)
//!                  Router::execute ──► (token, response)
//! ```
//!
//! Connections are *not* threads: every socket is non-blocking and
//! multiplexed by a single epoll event loop (raw syscall bindings in
//! the crate's one `unsafe` module, `poll`), so thousands of idle
//! clients cost a few hundred bytes each instead of a stack. The event
//! loop owns every socket; shard workers hand finished responses back
//! through a completion queue and a wake pipe.
//!
//! - **Sharding.** Each session is pinned to one shard by
//!   [`rsched_engine::shard_of`] of its name — the identical consistent
//!   hash the stdio loop uses — so a session's ops execute in dispatch
//!   order on one thread with no global lock, even when several
//!   connections touch the same session. Responses are appended to the
//!   *originating* connection's write buffer by the event loop, so
//!   concurrent shards never interleave bytes.
//! - **Connection lifecycle.** A partial frame must complete within
//!   [`NetConfig::read_deadline`] (slow-loris eviction), a silent
//!   connection is evicted after [`NetConfig::idle_timeout`], and a
//!   client that stops reading is evicted when its write buffer passes
//!   [`NetConfig::write_buf_cap`] (slow-consumer eviction). A frame
//!   longer than [`NetConfig::max_frame_bytes`] is answered with an
//!   in-band error and skipped. Graceful drain
//!   ([`ShutdownHandle::shutdown`] or SIGTERM under the CLI): stop
//!   accepting, finish in-flight requests, flush, tell idle clients
//!   `going_away`, hard cutoff at [`NetConfig::drain_timeout`].
//! - **Fault tolerance.** Shard workers run under a supervisor that
//!   respawns them when an injected `serve::worker_kill` (or an organic
//!   bug outside the per-request catch) takes one down; queued jobs and
//!   session tables live in shared state, so nothing is lost. Per-request
//!   panic isolation, quarantine, journaling, snapshot compaction, and
//!   recovery all come with the router. The `net::accept` failpoint
//!   covers the accept path itself: an injected error answers the new
//!   connection in-band and drops it; an injected panic is caught and
//!   the listener keeps accepting.
//! - **Admission control.** The router's `max_ops`/`max_edges` design
//!   limits and the bounded shard queues (shed with `overloaded` +
//!   `retry_after_ms`) work as in the stdio loop. On top, per-connection
//!   quotas: [`NetConfig::max_sessions_per_conn`] caps how many distinct
//!   sessions one connection may hold open, and
//!   [`NetConfig::max_inflight_per_conn`] caps its pipelined requests;
//!   both answer in-band with a `"quota exceeded: …"` error so one
//!   greedy tenant cannot monopolize the shard queues.
//!
//! # Lifecycle
//!
//! [`NetServer::bind`] binds the listener (use port `0` to let the OS
//! pick), [`NetServer::run`] serves until [`ShutdownHandle::shutdown`]
//! is called (idempotent; under the CLI, SIGTERM triggers it too), then
//! drains — in-flight requests are answered and flushed, idle clients
//! get an in-band `going_away`, stragglers are cut off at
//! [`NetConfig::drain_timeout`] — and returns a [`NetSummary`]. The
//! stdio loop remains available as `rsched serve --stdio` for pipelines
//! and backward compatibility.

// `deny`, not `forbid`: the `poll` module is the workspace's single
// carve-out for the raw epoll/pipe bindings; everything else stays
// unsafe-free and the compiler enforces it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use rsched_engine::ServeConfig;

pub mod poll;
mod server;

pub use server::{NetServer, ShutdownHandle};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP socket address (`ip:port`; port `0` = OS-assigned).
    Tcp(std::net::SocketAddr),
    /// A unix domain socket path (any stale socket file is replaced).
    Unix(PathBuf),
}

impl Listen {
    /// Parses a `--listen` value: a spec containing `/` is a unix socket
    /// path, anything else must be a full `ip:port` socket address.
    ///
    /// # Errors
    ///
    /// Returns the exact usage message for malformed specs.
    pub fn parse(spec: &str) -> Result<Listen, String> {
        if spec.contains('/') {
            return Ok(Listen::Unix(PathBuf::from(spec)));
        }
        spec.parse()
            .map(Listen::Tcp)
            .map_err(|_| format!(
                "--listen expects <ip:port> (e.g. 127.0.0.1:7070) or a unix socket path containing '/', got '{spec}'"
            ))
    }
}

impl fmt::Display for Listen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Listen::Tcp(addr) => write!(f, "{addr}"),
            Listen::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// Tuning knobs for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listener address.
    pub listen: Listen,
    /// Engine/router settings shared with the stdio loop: `workers`
    /// becomes the shard count; deadlines, queue depth, design limits,
    /// journal dir, snapshot interval, and fault scope keep their stdio
    /// semantics.
    pub engine: ServeConfig,
    /// Most distinct sessions one connection may hold open at once
    /// (`open` of a session already counted is a replace, `close` frees
    /// a slot). `None` = unlimited.
    pub max_sessions_per_conn: Option<usize>,
    /// Most requests one connection may have in flight (dispatched but
    /// not yet answered). `None` = unlimited.
    pub max_inflight_per_conn: Option<usize>,
    /// Evict a connection with no in-flight requests and no partial
    /// frame after this much silence. `None` = never.
    pub idle_timeout: Option<Duration>,
    /// A started frame (bytes received, no `\n` yet) must complete
    /// within this window or the connection is evicted — the
    /// slow-loris defense. `None` = no deadline.
    pub read_deadline: Option<Duration>,
    /// Hard cutoff for graceful drain: connections still open this long
    /// after [`ShutdownHandle::shutdown`] are force-closed. `None` =
    /// wait for every client (the pre-drain behavior, and what tests
    /// that orchestrate their own clients want).
    pub drain_timeout: Option<Duration>,
    /// Longest request frame accepted. A line that exceeds this before
    /// its `\n` arrives is answered with an in-band error and the rest
    /// of the oversize line is discarded; the connection lives on.
    pub max_frame_bytes: usize,
    /// Evict a connection (slow consumer) when its pending write buffer
    /// exceeds this many bytes. Reads pause (backpressure) at half this
    /// cap, so only a client that stops draining responses while the
    /// server still owes it bytes can hit the limit.
    pub write_buf_cap: usize,
}

/// Default [`NetConfig::max_frame_bytes`]: far above any legitimate
/// design frame, far below memory-exhaustion territory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Default [`NetConfig::write_buf_cap`]: a client that lets 4 MiB of
/// answers pile up unread is not consuming them.
pub const DEFAULT_WRITE_BUF_CAP: usize = 4 << 20;

impl NetConfig {
    /// A config listening on `listen` with stdio-default engine
    /// settings, no per-connection quotas, and no timeouts.
    pub fn new(listen: Listen) -> NetConfig {
        NetConfig {
            listen,
            engine: ServeConfig::default(),
            max_sessions_per_conn: None,
            max_inflight_per_conn: None,
            idle_timeout: None,
            read_deadline: None,
            drain_timeout: None,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            write_buf_cap: DEFAULT_WRITE_BUF_CAP,
        }
    }
}

/// What a [`NetServer::run`] processed, returned after shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted (including ones dropped by `net::accept`
    /// faults).
    pub connections: usize,
    /// Requests answered (including errors), across all connections.
    pub requests: usize,
    /// Requests answered with `"ok":false`.
    pub errors: usize,
    /// `open` requests that created a session.
    pub sessions_opened: usize,
    /// Request handlers that panicked (answered in-band).
    pub panics: usize,
    /// Sessions quarantined after a panic.
    pub quarantined: usize,
    /// Successful `recover` replays.
    pub recoveries: usize,
    /// Journal compactions (snapshots taken).
    pub snapshots: usize,
    /// Requests shed because a shard queue was full.
    pub shed: usize,
    /// Requests rejected by per-connection quotas.
    pub quota_rejections: usize,
    /// Shard worker threads respawned after dying outright.
    pub shards_respawned: usize,
    /// Connections answered-and-dropped or panicked by the `net::accept`
    /// failpoint.
    pub accept_faults: usize,
    /// Connections evicted by [`NetConfig::idle_timeout`].
    pub evicted_idle: usize,
    /// Connections evicted by [`NetConfig::read_deadline`] (slow-loris:
    /// a partial frame that never completed).
    pub evicted_deadline: usize,
    /// Connections evicted as slow consumers
    /// ([`NetConfig::write_buf_cap`] exceeded).
    pub evicted_slow: usize,
    /// Frames rejected in-band for exceeding
    /// [`NetConfig::max_frame_bytes`].
    pub oversize_frames: usize,
    /// `going_away` notices sent to idle connections during drain (not
    /// counted in [`NetSummary::requests`] — they answer no request).
    pub going_away_sent: usize,
    /// Connections force-closed at the [`NetConfig::drain_timeout`]
    /// hard cutoff.
    pub drain_cutoffs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_parses_tcp_unix_and_rejects_garbage() {
        assert_eq!(
            Listen::parse("127.0.0.1:7070"),
            Ok(Listen::Tcp("127.0.0.1:7070".parse().unwrap()))
        );
        assert_eq!(
            Listen::parse("/tmp/rsched.sock"),
            Ok(Listen::Unix(PathBuf::from("/tmp/rsched.sock")))
        );
        // Relative paths work too — anything with a '/'.
        assert_eq!(
            Listen::parse("run/s.sock"),
            Ok(Listen::Unix(PathBuf::from("run/s.sock")))
        );
        let err = Listen::parse("localhost:7070").unwrap_err();
        assert_eq!(
            err,
            "--listen expects <ip:port> (e.g. 127.0.0.1:7070) or a unix socket path containing \
             '/', got 'localhost:7070'"
        );
        assert!(Listen::parse("7070").is_err());
        assert!(Listen::parse("").is_err());
    }
}
