//! The readiness-driven connection runtime: one epoll event loop owning
//! every socket, plus supervised shard workers; see the crate docs for
//! the architecture.
//!
//! # Connection lifecycle
//!
//! ```text
//!            accept
//!              │ (net::accept fault: answer in-band, drop)
//!              ▼
//!   ┌──► READING ──────────────────────────────┐
//!   │      │ frame complete: parse/route/quota │ write_buf ≥ cap/2:
//!   │      │ → dispatch to shard               │ pause reads
//!   │      ▼                                   ▼ (backpressure)
//!   │   INFLIGHT ◄── completion queue ──── PAUSED
//!   │      │ response appended, flushed        │ write_buf drained:
//!   └──────┘                                   ▼ resume reads
//!                                      write_buf > cap: EVICTED (slow consumer)
//!   partial frame older than --read-deadline:  EVICTED (slow loris)
//!   silent longer than --idle-timeout:         EVICTED (idle)
//!   shutdown/SIGTERM: DRAINING — answer in-flight, flush, `going_away`,
//!   close; stragglers force-closed at --drain-timeout
//! ```
//!
//! Every transition runs on the event-loop thread; shard workers only
//! ever see `(token, request)` pairs and hand `(token, response)` pairs
//! back through the completion queue, so no socket is ever touched from
//! two threads.

use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use rsched_engine::json::{object, Json};
use rsched_engine::{
    error_response, overloaded_response, Router, DEADLINE_ERROR, MALFORMED_UTF8_ERROR,
};
use rsched_graph::failpoint;

use crate::poll::{self, Event, Interest, Poller, WakePipe};
use crate::{Listen, NetConfig, NetSummary};

/// The in-band notice sent to every connection during graceful drain.
pub const GOING_AWAY_ERROR: &str = "going_away: server draining";

/// Poll-wait granularity when deadlines are armed (idle/read timeouts
/// configured, or a drain in progress). Expiry checks are O(live
/// connections) at this cadence, which is noise even at 10k.
const TICK: Duration = Duration::from_millis(25);

/// Event-loop tokens: connections use `(generation << 32) | slab index`,
/// so the two specials live where no connection token can.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

fn conn_token(index: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | index as u64
}

/// One accepted client stream, TCP or unix — identical from the framing
/// up.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(true),
            Stream::Unix(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Responses are single small lines; without TCP_NODELAY
                // each round trip stalls on Nagle + delayed ACK (~40 ms).
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// One connection's state machine, owned exclusively by the event loop.
struct Conn {
    stream: Stream,
    /// Generation-tagged identity; completions carry it so a response
    /// for a dead connection can never reach a slab-slot reuser.
    token: u64,
    /// Bytes of the current partial frame (no `\n` seen yet).
    read_buf: Vec<u8>,
    /// Skipping the tail of an oversize frame until its `\n`.
    discarding: bool,
    /// Pending response bytes; `written` is the already-sent prefix.
    write_buf: Vec<u8>,
    written: usize,
    /// Requests dispatched to a shard but not yet answered.
    inflight: usize,
    /// Sessions held against `max_sessions_per_conn`; freed as one unit
    /// when the connection dies, however it dies.
    held: HashSet<String>,
    /// Last byte received — the idle-timeout clock.
    last_activity: Instant,
    /// When the current partial frame started — the read-deadline clock.
    partial_since: Option<Instant>,
    /// Peer sent EOF (orderly close or half-close); in-flight requests
    /// are still answered and flushed before the socket drops.
    read_closed: bool,
    /// `going_away` already queued (drain is per-connection one-shot).
    notified_going_away: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn pending(&self) -> usize {
        self.write_buf.len() - self.written
    }
}

struct ShardJob {
    token: u64,
    id: Json,
    request: Json,
    accepted: Instant,
    deadline: Option<Duration>,
}

/// Everything shard workers and the event loop share; outlives any
/// individual worker thread (they are respawned on kill).
struct NetShared {
    router: Router,
    /// Receivers live here — not in the workers — so queued jobs survive
    /// a shard death and drain through its replacement.
    receivers: Vec<Mutex<Receiver<ShardJob>>>,
    fault_scope: Option<u64>,
    /// Finished `(token, response)` pairs on their way back to the event
    /// loop, which owns all sockets.
    completions: Mutex<Vec<(u64, Json)>>,
    waker: poll::Waker,
    respawned: AtomicUsize,
}

/// See `rsched_engine::service`: poisoning here only ever means a panic
/// was already handled elsewhere; the data is consistent by construction.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Asks a running [`NetServer`] to drain and stop. Idempotent: the flag
/// is sticky and the wake pipe tolerates any number of nudges, including
/// after the listener (or the whole server) is gone.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
}

impl ShutdownHandle {
    /// Signals graceful drain: stop accepting, answer in-flight
    /// requests, flush, notify idle clients with `going_away`, force the
    /// stragglers at the drain timeout. Safe to call from any thread,
    /// any number of times.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        self.wake.waker().wake();
    }
}

/// A bound socket server; see the crate docs.
pub struct NetServer {
    listener: Listener,
    resolved: Listen,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    sigterm: bool,
}

impl NetServer {
    /// Binds the configured listener. For TCP, port `0` asks the OS for
    /// a free port — read the outcome from [`NetServer::local_addr`]. A
    /// stale unix socket file left by a dead process is replaced.
    ///
    /// # Errors
    ///
    /// Any bind failure (port in use, bad permissions, …) or wake-pipe
    /// creation failure (fd exhaustion).
    pub fn bind(config: NetConfig) -> io::Result<NetServer> {
        let (listener, resolved) = match &config.listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let resolved = Listen::Tcp(listener.local_addr()?);
                (Listener::Tcp(listener), resolved)
            }
            Listen::Unix(path) => {
                // A bind would fail on the leftover file of a previous
                // (dead) server; nothing can be listening on it or the
                // remove would race an active sibling — operator's call.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener), Listen::Unix(path.clone()))
            }
        };
        Ok(NetServer {
            listener,
            resolved,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            wake: Arc::new(WakePipe::new()?),
            sigterm: false,
        })
    }

    /// Where the server actually listens (the OS-assigned port for TCP
    /// binds to port `0`).
    pub fn local_addr(&self) -> &Listen {
        &self.resolved
    }

    /// A handle that can drain-and-stop this server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            wake: Arc::clone(&self.wake),
        }
    }

    /// Routes SIGTERM to graceful drain, exactly as if
    /// [`ShutdownHandle::shutdown`] had been called. Installs a
    /// process-global handler — meant for the CLI's one-server-per-
    /// process deployment, not for embedding.
    pub fn install_sigterm_drain(&mut self) {
        poll::install_sigterm_drain(&self.wake.waker());
        self.sigterm = true;
    }

    /// Serves until [`ShutdownHandle::shutdown`] (or SIGTERM, when
    /// [`NetServer::install_sigterm_drain`] was called), then drains and
    /// returns the summary.
    ///
    /// # Errors
    ///
    /// Only listener/poller I/O errors are fatal; per-connection and
    /// per-request failures are answered in-band or drop just that
    /// connection.
    pub fn run(self) -> io::Result<NetSummary> {
        let NetServer {
            listener,
            resolved,
            config,
            shutdown,
            wake,
            sigterm,
        } = self;
        listener.set_nonblocking()?;
        let n_shards = config.engine.workers.max(1);
        let queue_depth = config.engine.queue_depth.max(1);
        let mut senders: Vec<SyncSender<ShardJob>> = Vec::with_capacity(n_shards);
        let mut receivers: Vec<Mutex<Receiver<ShardJob>>> = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = mpsc::sync_channel(queue_depth);
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        let shared = NetShared {
            router: Router::new(n_shards, &config.engine),
            receivers,
            fault_scope: config.engine.fault_scope,
            completions: Mutex::new(Vec::new()),
            waker: wake.waker(),
            respawned: AtomicUsize::new(0),
        };
        let shared = &shared;

        let counters = thread::scope(|scope| -> io::Result<LoopCounters> {
            for slot in 0..n_shards {
                scope.spawn(move || supervise_shard(slot, shared));
            }
            // The event-loop thread enters the fault scope so
            // `net::accept` can target exactly this server instance.
            let _scope_guard = shared.fault_scope.map(failpoint::enter_scope);
            let mut el = EventLoop::new(
                listener, senders, shared, &config, &shutdown, &wake, sigterm,
            )?;
            el.run_loop()?;
            Ok(el.c)
            // `el` drops here: its senders close the shard queues, the
            // workers drain what's left (responses to now-dead tokens are
            // discarded), group-commit their journals, and exit; the
            // scope joins them before the summary is read.
        })?;

        if let Listen::Unix(path) = &resolved {
            let _ = std::fs::remove_file(path);
        }
        let router_stats = shared.router.stats();
        Ok(NetSummary {
            connections: counters.connections,
            requests: counters.responses,
            errors: counters.errors,
            sessions_opened: router_stats.sessions_opened,
            panics: router_stats.panics,
            quarantined: router_stats.quarantined,
            recoveries: router_stats.recoveries,
            snapshots: router_stats.snapshots,
            shed: counters.shed,
            quota_rejections: counters.quota_rejections,
            shards_respawned: shared.respawned.load(Ordering::Relaxed),
            accept_faults: counters.accept_faults,
            evicted_idle: counters.evicted_idle,
            evicted_deadline: counters.evicted_deadline,
            evicted_slow: counters.evicted_slow,
            oversize_frames: counters.oversize_frames,
            going_away_sent: counters.going_away_sent,
            drain_cutoffs: counters.drain_cutoffs,
        })
    }
}

/// Counters the event loop owns exclusively — single-threaded, so plain
/// integers instead of atomics.
#[derive(Clone, Copy, Default)]
struct LoopCounters {
    connections: usize,
    responses: usize,
    errors: usize,
    shed: usize,
    quota_rejections: usize,
    accept_faults: usize,
    evicted_idle: usize,
    evicted_deadline: usize,
    evicted_slow: usize,
    oversize_frames: usize,
    going_away_sent: usize,
    drain_cutoffs: usize,
}

enum ReadStep {
    Data(usize),
    Eof,
    Blocked,
    Dead,
}

enum FlushStep {
    Ok,
    Dead,
    SlowConsumer,
}

struct EventLoop<'a> {
    poller: Poller,
    wake: &'a WakePipe,
    /// `None` once drain has closed it.
    listener: Option<Listener>,
    senders: Vec<SyncSender<ShardJob>>,
    shared: &'a NetShared,
    config: &'a NetConfig,
    shutdown: &'a AtomicBool,
    sigterm: bool,
    /// Connection slab + free list; `gens[i]` advances on every reuse of
    /// slot `i` so stale tokens can never resolve.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    gens: Vec<u32>,
    live: usize,
    /// Reused read scratch (taken/restored around reads to satisfy the
    /// borrow checker without reallocating 64 KiB per event).
    scratch: Vec<u8>,
    draining: bool,
    drain_deadline: Option<Instant>,
    fatal: Option<io::Error>,
    c: LoopCounters,
}

impl<'a> EventLoop<'a> {
    fn new(
        listener: Listener,
        senders: Vec<SyncSender<ShardJob>>,
        shared: &'a NetShared,
        config: &'a NetConfig,
        shutdown: &'a AtomicBool,
        wake: &'a WakePipe,
        sigterm: bool,
    ) -> io::Result<EventLoop<'a>> {
        let poller = Poller::new()?;
        let read_only = Interest {
            readable: true,
            writable: false,
        };
        poller.add(listener.fd(), TOKEN_LISTENER, read_only)?;
        poller.add(wake.read_fd(), TOKEN_WAKE, read_only)?;
        Ok(EventLoop {
            poller,
            wake,
            listener: Some(listener),
            senders,
            shared,
            config,
            shutdown,
            sigterm,
            conns: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            live: 0,
            scratch: vec![0u8; 64 * 1024],
            draining: false,
            drain_deadline: None,
            fatal: None,
            c: LoopCounters::default(),
        })
    }

    fn run_loop(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) || (self.sigterm && poll::sigterm_pending()) {
                self.begin_drain();
            }
            if self.draining && self.live == 0 {
                return Ok(());
            }
            events.clear();
            self.poller.wait(&mut events, self.next_timeout())?;
            for ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    _ => self.conn_event(*ev),
                }
            }
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
            self.handle_completions();
            self.expire(Instant::now());
        }
    }

    /// Sleep forever when nothing is deadline-bound; tick when idle or
    /// read deadlines are armed or a drain cutoff is approaching.
    fn next_timeout(&self) -> Option<Duration> {
        if self.draining {
            return Some(match self.drain_deadline {
                Some(dl) => dl.saturating_duration_since(Instant::now()).min(TICK),
                None => TICK,
            });
        }
        if self.config.idle_timeout.is_some() || self.config.read_deadline.is_some() {
            Some(TICK)
        } else {
            None
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let mut stream = match listener.accept() {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // The peer aborted between SYN and accept — its problem,
                // not the listener's.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    self.fatal = Some(e);
                    return;
                }
            };
            self.c.connections += 1;
            // Accept fault site, isolated so an injected panic (or an
            // organic bug in connection setup) never kills the listener:
            // the connection is dropped, accepting goes on.
            match catch_unwind(AssertUnwindSafe(|| failpoint!("net::accept"))) {
                Ok(None) => {}
                Ok(Some(msg)) => {
                    self.c.accept_faults += 1;
                    let line = error_response(Json::Null, format!("injected fault: {msg}"));
                    // Still blocking (nonblocking is set below), so the
                    // one-line answer lands before the drop.
                    let _ = stream.write_all(format!("{}\n", line.render()).as_bytes());
                    continue; // Answered in-band, then dropped.
                }
                Err(_) => {
                    self.c.accept_faults += 1;
                    continue;
                }
            }
            if stream.set_nonblocking().is_err() {
                continue; // Connection already unusable.
            }
            let idx = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            });
            let token = conn_token(idx, self.gens[idx]);
            let interest = Interest {
                readable: true,
                writable: false,
            };
            if self.poller.add(stream.fd(), token, interest).is_err() {
                self.free.push(idx);
                continue;
            }
            self.conns[idx] = Some(Conn {
                stream,
                token,
                read_buf: Vec::new(),
                discarding: false,
                write_buf: Vec::new(),
                written: 0,
                inflight: 0,
                held: HashSet::new(),
                last_activity: Instant::now(),
                partial_since: None,
                read_closed: false,
                notified_going_away: false,
                interest,
            });
            self.live += 1;
        }
    }

    fn conn_event(&mut self, ev: Event) {
        let idx = (ev.token & u64::from(u32::MAX)) as usize;
        let valid = |conns: &[Option<Conn>]| {
            conns
                .get(idx)
                .and_then(Option::as_ref)
                .is_some_and(|c| c.token == ev.token)
        };
        if !valid(&self.conns) {
            return; // Stale event for a connection that just closed.
        }
        // `closed` (RDHUP/HUP/ERR) also routes through a read: the read
        // result distinguishes half-close (Ok(0): keep until answered)
        // from a dead socket (ECONNRESET: drop now), and it fires even
        // when read interest is paused for backpressure.
        if ev.readable || ev.closed {
            self.read_conn(idx);
        }
        if ev.writable && valid(&self.conns) {
            self.flush_conn(idx);
        }
    }

    fn read_conn(&mut self, idx: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        loop {
            let step = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    break;
                };
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        ReadStep::Eof
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        ReadStep::Data(n)
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => ReadStep::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => ReadStep::Dead,
                }
            };
            match step {
                ReadStep::Data(n) => {
                    // Drain discards intake: frames not yet dispatched
                    // are not in-flight; the client gets `going_away`.
                    if !self.draining {
                        self.ingest(idx, &scratch[..n]);
                    }
                }
                ReadStep::Eof | ReadStep::Blocked => break,
                ReadStep::Dead => {
                    self.close_conn(idx);
                    break;
                }
            }
        }
        self.scratch = scratch;
        self.maybe_finish_conn(idx);
    }

    /// Splits an incoming chunk into frames against the connection's
    /// partial-frame buffer, enforcing the frame-size cap.
    fn ingest(&mut self, idx: usize, mut bytes: &[u8]) {
        loop {
            if bytes.is_empty() {
                return;
            }
            {
                let Some(conn) = self.conns[idx].as_ref() else {
                    return;
                };
                if conn.discarding {
                    match bytes.iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            bytes = &bytes[pos + 1..];
                            let conn = self.conns[idx].as_mut().expect("checked above");
                            conn.discarding = false;
                            conn.partial_since = None;
                            continue;
                        }
                        None => return, // Still inside the oversize tail.
                    }
                }
            }
            match bytes.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (frame, oversize) = {
                        let Some(conn) = self.conns[idx].as_mut() else {
                            return;
                        };
                        let oversize = conn.read_buf.len() + pos > self.config.max_frame_bytes;
                        let mut frame = std::mem::take(&mut conn.read_buf);
                        conn.partial_since = None;
                        if oversize {
                            frame.clear();
                        } else {
                            frame.extend_from_slice(&bytes[..pos]);
                        }
                        (frame, oversize)
                    };
                    bytes = &bytes[pos + 1..];
                    if oversize {
                        self.reject_oversize(idx);
                    } else {
                        self.intake_frame(idx, &frame);
                    }
                }
                None => {
                    let Some(conn) = self.conns[idx].as_mut() else {
                        return;
                    };
                    if conn.read_buf.is_empty() {
                        conn.partial_since = Some(Instant::now());
                    }
                    conn.read_buf.extend_from_slice(bytes);
                    if conn.read_buf.len() > self.config.max_frame_bytes {
                        conn.read_buf = Vec::new();
                        // The discard tail keeps `partial_since`: the
                        // unfinished line is still read-deadline-bound.
                        conn.discarding = true;
                        self.reject_oversize(idx);
                    }
                    return;
                }
            }
        }
    }

    fn reject_oversize(&mut self, idx: usize) {
        self.c.oversize_frames += 1;
        let max = self.config.max_frame_bytes;
        self.queue_response(
            idx,
            error_response(
                Json::Null,
                format!("oversize frame: exceeds {max} byte cap"),
            ),
            true,
        );
    }

    /// One complete frame: parse, validate/route, enforce quotas,
    /// dispatch to the session's shard — the intake half of the old
    /// per-connection reader thread, now running on the event loop.
    fn intake_frame(&mut self, idx: usize, raw: &[u8]) {
        let mut raw = raw;
        if raw.last() == Some(&b'\r') {
            raw = &raw[..raw.len() - 1]; // `\r\n` framing stays accepted.
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            self.queue_response(idx, error_response(Json::Null, MALFORMED_UTF8_ERROR), true);
            return;
        };
        if line.trim().is_empty() {
            return;
        }
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.queue_response(
                    idx,
                    error_response(Json::Null, format!("malformed request: {e}")),
                    true,
                );
                return;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        if op == "health" {
            // Answered synchronously: liveness must not depend on shard
            // queues having room.
            let response = self.health_response(id);
            self.queue_response(idx, response, true);
            return;
        }
        let slot = match self.shared.router.route(&id, &request) {
            Ok(slot) => slot,
            Err(response) => {
                self.queue_response(idx, response, true);
                return;
            }
        };
        // Quotas apply after validation so they only reject requests
        // that would otherwise consume shard capacity.
        if let Some(max) = self.config.max_inflight_per_conn {
            let over = self.conns[idx]
                .as_ref()
                .is_some_and(|conn| conn.inflight >= max);
            if over {
                self.c.quota_rejections += 1;
                self.queue_response(
                    idx,
                    error_response(
                        id,
                        format!(
                            "quota exceeded: {max} request(s) already in flight on this connection"
                        ),
                    ),
                    true,
                );
                return;
            }
        }
        let session = request.get("session").and_then(Json::as_str);
        // Session slots are accounted at dispatch: an `open` claims one
        // (even if the design later fails to parse — admission control
        // is deliberately pessimistic), a `close` frees it.
        if op == "open" {
            if let (Some(max), Some(name)) = (self.config.max_sessions_per_conn, session) {
                let over = self.conns[idx]
                    .as_ref()
                    .is_some_and(|conn| !conn.held.contains(name) && conn.held.len() >= max);
                if over {
                    self.c.quota_rejections += 1;
                    self.queue_response(
                        idx,
                        error_response(
                            id,
                            format!("quota exceeded: connection already holds {max} session(s)"),
                        ),
                        true,
                    );
                    return;
                }
            }
            if let (Some(conn), Some(name)) = (self.conns[idx].as_mut(), session) {
                conn.held.insert(name.to_owned());
            }
        } else if op == "close" {
            if let (Some(conn), Some(name)) = (self.conns[idx].as_mut(), session) {
                conn.held.remove(name);
            }
        }
        let deadline = request
            .get("deadline_ms")
            .and_then(Json::as_i64)
            .map(|ms| Duration::from_millis(ms.max(0) as u64))
            .or(self.config.engine.deadline);
        let token = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            conn.inflight += 1;
            conn.token
        };
        let job = ShardJob {
            token,
            id,
            request,
            accepted: Instant::now(),
            deadline,
        };
        match self.senders[slot].try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                self.c.shed += 1;
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.inflight -= 1;
                }
                self.queue_response(idx, overloaded_response(job.id), true);
            }
            // Possible only if a shard's supervisor itself died — answer
            // in-band rather than hanging the client.
            Err(TrySendError::Disconnected(job)) => {
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.inflight -= 1;
                }
                self.queue_response(
                    idx,
                    error_response(job.id, "shard queue disconnected"),
                    true,
                );
            }
        }
    }

    /// The router's `health` body plus this transport's `net` block.
    fn health_response(&self, id: Json) -> Json {
        let mut response = self.shared.router.health_json(id);
        let body = match &mut response {
            Json::Object(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "health")
                .map(|(_, v)| v),
            _ => None,
        };
        if let Some(Json::Object(pairs)) = body {
            pairs.push((
                "net".to_owned(),
                object([
                    ("connections", Json::from(self.live)),
                    ("draining", Json::Bool(self.draining)),
                    ("evicted_idle", Json::from(self.c.evicted_idle)),
                    ("evicted_deadline", Json::from(self.c.evicted_deadline)),
                    ("evicted_slow", Json::from(self.c.evicted_slow)),
                    ("oversize_frames", Json::from(self.c.oversize_frames)),
                    ("going_away_sent", Json::from(self.c.going_away_sent)),
                ]),
            ));
        }
        response
    }

    /// Appends one response line to the connection's write buffer and
    /// pushes it toward the socket. `count_request` marks lines that
    /// answer a request (vs. `going_away`/eviction notices, which are
    /// server-initiated and tallied separately).
    fn queue_response(&mut self, idx: usize, response: Json, count_request: bool) {
        if self.conns[idx].is_none() {
            return; // Connection died while the request ran.
        }
        if count_request {
            self.c.responses += 1;
            if response.get("ok").and_then(Json::as_bool) == Some(false) {
                self.c.errors += 1;
            }
        }
        let mut line = response.render();
        line.push('\n');
        let conn = self.conns[idx].as_mut().expect("checked above");
        conn.write_buf.extend_from_slice(line.as_bytes());
        self.flush_conn(idx);
    }

    fn flush_conn(&mut self, idx: usize) {
        let step = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let mut step = FlushStep::Ok;
            while conn.written < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => break,
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        step = FlushStep::Dead;
                        break;
                    }
                }
            }
            if matches!(step, FlushStep::Ok) {
                if conn.written == conn.write_buf.len() {
                    conn.write_buf.clear();
                    conn.written = 0;
                } else if conn.written >= 64 * 1024 {
                    // Reclaim the sent prefix before it dominates the cap.
                    conn.write_buf.drain(..conn.written);
                    conn.written = 0;
                }
                if conn.pending() > self.config.write_buf_cap {
                    step = FlushStep::SlowConsumer;
                }
            }
            step
        };
        match step {
            FlushStep::Dead => self.close_conn(idx),
            FlushStep::SlowConsumer => {
                self.c.evicted_slow += 1;
                self.close_conn(idx);
            }
            FlushStep::Ok => {
                self.update_interest(idx);
                self.maybe_finish_conn(idx);
            }
        }
    }

    /// Re-registers the fd when the desired readiness set changed:
    /// writable only while bytes are pending, readable unless EOF,
    /// drain, or backpressure (write buffer above half its cap) paused
    /// the intake.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let desired = Interest {
            readable: !conn.read_closed
                && !self.draining
                && conn.pending() < self.config.write_buf_cap / 2,
            writable: conn.pending() > 0,
        };
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.fd(), conn.token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Closes the connection once it owes nothing: no in-flight
    /// requests, write buffer flushed, and either the peer already
    /// closed or a drain said goodbye. During drain this is also where
    /// the one-shot `going_away` notice is queued.
    fn maybe_finish_conn(&mut self, idx: usize) {
        let needs_notice = {
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            self.draining && conn.inflight == 0 && !conn.notified_going_away
        };
        if needs_notice {
            {
                let conn = self.conns[idx].as_mut().expect("checked above");
                conn.notified_going_away = true;
                let mut line = error_response(Json::Null, GOING_AWAY_ERROR).render();
                line.push('\n');
                conn.write_buf.extend_from_slice(line.as_bytes());
            }
            self.c.going_away_sent += 1;
            self.flush_conn(idx); // Re-enters here with the notice sent.
            return;
        }
        let done = {
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            conn.inflight == 0
                && conn.pending() == 0
                && (conn.read_closed || (self.draining && conn.notified_going_away))
        };
        if done {
            self.close_conn(idx);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            self.poller.remove(conn.stream.fd());
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.live -= 1;
            // Dropping `conn` closes the socket and releases its held-
            // session and inflight quota slots in one place — the only
            // place — so abrupt disconnects can never double-free them.
        }
    }

    /// Delivers finished responses from the shard workers to their
    /// connections' write buffers.
    fn handle_completions(&mut self) {
        let batch = std::mem::take(&mut *lock_recover(&self.shared.completions));
        for (token, response) in batch {
            let idx = (token & u64::from(u32::MAX)) as usize;
            let alive = self
                .conns
                .get(idx)
                .and_then(Option::as_ref)
                .is_some_and(|c| c.token == token);
            if !alive {
                continue; // Connection died while the request ran.
            }
            let conn = self.conns[idx].as_mut().expect("checked above");
            conn.inflight -= 1;
            // queue_response flushes, which re-evaluates interest and
            // (during drain or after EOF) may finish the connection.
            self.queue_response(idx, response, true);
        }
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_deadline = self
            .config
            .drain_timeout
            .map(|timeout| Instant::now() + timeout);
        if let Some(listener) = self.listener.take() {
            self.poller.remove(listener.fd());
            // Dropped: new connections are refused from here on.
        }
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.update_interest(idx); // Intake stops.
                self.maybe_finish_conn(idx); // Idle conns say goodbye now.
            }
        }
    }

    /// The deadline sweep: read deadlines, idle timeouts, and the drain
    /// hard cutoff. Runs per tick; O(live connections).
    fn expire(&mut self, now: Instant) {
        if self.draining {
            if self.drain_deadline.is_some_and(|dl| now >= dl) {
                for idx in 0..self.conns.len() {
                    if self.conns[idx].is_some() {
                        self.c.drain_cutoffs += 1;
                        self.close_conn(idx);
                    }
                }
            }
            return; // Idle/read deadlines are moot mid-drain.
        }
        if self.config.idle_timeout.is_none() && self.config.read_deadline.is_none() {
            return;
        }
        for idx in 0..self.conns.len() {
            let verdict = {
                let Some(conn) = self.conns[idx].as_ref() else {
                    continue;
                };
                if self
                    .config
                    .read_deadline
                    .zip(conn.partial_since)
                    .is_some_and(|(deadline, since)| now.duration_since(since) > deadline)
                {
                    Some(("evicted: read deadline exceeded on a partial frame", true))
                } else if self.config.idle_timeout.is_some_and(|idle| {
                    conn.inflight == 0
                        && conn.read_buf.is_empty()
                        && !conn.discarding
                        && conn.pending() == 0
                        && now.duration_since(conn.last_activity) > idle
                }) {
                    Some(("evicted: idle timeout", false))
                } else {
                    None
                }
            };
            if let Some((msg, is_deadline)) = verdict {
                if is_deadline {
                    self.c.evicted_deadline += 1;
                } else {
                    self.c.evicted_idle += 1;
                }
                self.evict_with_notice(idx, msg);
            }
        }
    }

    /// Best-effort in-band goodbye, then close. The eviction stands even
    /// if the notice doesn't fit the socket buffer — that's exactly the
    /// slow client being evicted.
    fn evict_with_notice(&mut self, idx: usize, msg: &str) {
        if let Some(conn) = self.conns[idx].as_mut() {
            let mut line = error_response(Json::Null, msg).render();
            line.push('\n');
            conn.write_buf.extend_from_slice(line.as_bytes());
            let _ = conn.stream.write(&conn.write_buf[conn.written..]);
        }
        self.close_conn(idx);
    }
}

/// Keeps one shard slot staffed: a worker that dies outright (an
/// injected `serve::worker_kill`, or an organic bug outside the
/// per-request catch) is replaced on the same queue — sessions and
/// queued jobs live in `shared`, so nothing is lost or reordered.
fn supervise_shard(slot: usize, shared: &NetShared) {
    loop {
        if catch_unwind(AssertUnwindSafe(|| shard_worker(slot, shared))).is_ok() {
            return; // Clean exit: queue closed.
        }
        shared.respawned.fetch_add(1, Ordering::Relaxed);
    }
}

/// A shard's serving loop — the socket twin of the stdio worker: recv,
/// execute, answer, batch-drain, then group-commit the batch's WAL
/// lines with one sync per journal.
fn shard_worker(slot: usize, shared: &NetShared) {
    let _scope = shared.fault_scope.map(failpoint::enter_scope);
    loop {
        // Kill site, evaluated with no job in hand and no lock held.
        let _ = failpoint!("serve::worker_kill");
        let job = {
            let rx = lock_recover(&shared.receivers[slot]);
            rx.recv()
        };
        let Ok(job) = job else {
            shared.router.sync_journals(slot);
            return;
        };
        process(slot, shared, job);
        loop {
            let _ = failpoint!("serve::worker_kill");
            let job = {
                let rx = lock_recover(&shared.receivers[slot]);
                rx.try_recv()
            };
            let Ok(job) = job else { break };
            process(slot, shared, job);
        }
        shared.router.sync_journals(slot);
    }
}

/// Executes one job, honoring its deadline, and hands the response back
/// to the event loop (which owns the socket and the inflight counter).
fn process(slot: usize, shared: &NetShared, job: ShardJob) {
    let expired = job.deadline.is_some_and(|d| job.accepted.elapsed() > d);
    let response = if expired {
        error_response(job.id, DEADLINE_ERROR)
    } else {
        shared.router.execute(slot, job.id, &job.request)
    };
    lock_recover(&shared.completions).push((job.token, response));
    shared.waker.wake();
}
