//! The socket listener, connection readers, and supervised shard
//! workers; see the crate docs for the architecture.

use std::collections::HashSet;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use rsched_engine::json::Json;
use rsched_engine::{error_response, overloaded_response, Router, DEADLINE_ERROR};
use rsched_graph::failpoint;

use crate::{Listen, NetConfig, NetSummary};

/// One accepted client stream, TCP or unix — the two are identical from
/// the framing up.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Responses are single small lines; without TCP_NODELAY
                // each round trip stalls on Nagle + delayed ACK (~40 ms).
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Per-connection state shared between its reader thread and the shard
/// workers answering its requests.
struct Conn {
    /// Writer half; every response line is written and flushed under
    /// this lock so concurrent shards never interleave bytes.
    writer: Mutex<Stream>,
    /// Requests dispatched to a shard but not yet answered.
    inflight: AtomicUsize,
}

struct ShardJob {
    id: Json,
    request: Json,
    accepted: Instant,
    deadline: Option<Duration>,
    conn: Arc<Conn>,
}

/// Everything shard workers and connection readers share; outlives any
/// individual worker thread (they are respawned on kill).
struct NetShared {
    router: Router,
    /// Receivers live here — not in the workers — so queued jobs survive
    /// a shard death and drain through its replacement.
    receivers: Vec<Mutex<Receiver<ShardJob>>>,
    fault_scope: Option<u64>,
    responses: AtomicUsize,
    errors: AtomicUsize,
    shed: AtomicUsize,
    quota_rejections: AtomicUsize,
    respawned: AtomicUsize,
    accept_faults: AtomicUsize,
    connections: AtomicUsize,
}

/// See `rsched_engine::service`: poisoning here only ever means a panic
/// was already handled elsewhere; the data is consistent by construction.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Asks a running [`NetServer`] to stop accepting connections.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    target: Listen,
}

impl ShutdownHandle {
    /// Signals shutdown and nudges the accept loop awake with a throwaway
    /// connection. [`NetServer::run`] still drains every connected
    /// client to EOF before returning.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        match &self.target {
            Listen::Tcp(addr) => drop(TcpStream::connect(addr)),
            Listen::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A bound socket server; see the crate docs.
pub struct NetServer {
    listener: Listener,
    resolved: Listen,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
}

impl NetServer {
    /// Binds the configured listener. For TCP, port `0` asks the OS for
    /// a free port — read the outcome from [`NetServer::local_addr`]. A
    /// stale unix socket file left by a dead process is replaced.
    ///
    /// # Errors
    ///
    /// Any bind failure (port in use, bad permissions, …).
    pub fn bind(config: NetConfig) -> io::Result<NetServer> {
        let (listener, resolved) = match &config.listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let resolved = Listen::Tcp(listener.local_addr()?);
                (Listener::Tcp(listener), resolved)
            }
            Listen::Unix(path) => {
                // A bind would fail on the leftover file of a previous
                // (dead) server; nothing can be listening on it or the
                // remove would race an active sibling — operator's call.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener), Listen::Unix(path.clone()))
            }
        };
        Ok(NetServer {
            listener,
            resolved,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Where the server actually listens (the OS-assigned port for TCP
    /// binds to port `0`).
    pub fn local_addr(&self) -> &Listen {
        &self.resolved
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            target: self.resolved.clone(),
        }
    }

    /// Serves until [`ShutdownHandle::shutdown`] is called, then drains:
    /// every already-accepted connection is read to EOF and every
    /// dispatched request answered before the summary is returned.
    ///
    /// # Errors
    ///
    /// Only listener I/O errors are fatal; per-connection and per-request
    /// failures are answered in-band or drop just that connection.
    pub fn run(self) -> io::Result<NetSummary> {
        let n_shards = self.config.engine.workers.max(1);
        let queue_depth = self.config.engine.queue_depth.max(1);
        let mut senders: Vec<SyncSender<ShardJob>> = Vec::with_capacity(n_shards);
        let mut receivers: Vec<Mutex<Receiver<ShardJob>>> = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = mpsc::sync_channel(queue_depth);
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        let shared = NetShared {
            router: Router::new(n_shards, &self.config.engine),
            receivers,
            fault_scope: self.config.engine.fault_scope,
            responses: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            quota_rejections: AtomicUsize::new(0),
            respawned: AtomicUsize::new(0),
            accept_faults: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
        };
        let shared = &shared;

        thread::scope(|scope| -> io::Result<()> {
            for slot in 0..n_shards {
                scope.spawn(move || supervise_shard(slot, shared));
            }
            // The accept thread enters the fault scope so `net::accept`
            // can be targeted at exactly this server instance.
            let _scope_guard = shared.fault_scope.map(failpoint::enter_scope);
            let mut conn_handles = Vec::new();
            loop {
                let stream = match self.listener.accept() {
                    Ok(s) => s,
                    Err(e) => {
                        if self.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        return Err(e);
                    }
                };
                if self.shutdown.load(Ordering::Acquire) {
                    break; // The shutdown handle's wake-up connection.
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                // Accept fault site, isolated so an injected panic (or an
                // organic bug in connection setup) never kills the
                // listener: the connection is dropped, accepting goes on.
                match catch_unwind(AssertUnwindSafe(|| failpoint!("net::accept"))) {
                    Ok(None) => {}
                    Ok(Some(msg)) => {
                        shared.accept_faults.fetch_add(1, Ordering::Relaxed);
                        let mut stream = stream;
                        let line = error_response(Json::Null, format!("injected fault: {msg}"));
                        let _ = stream.write_all(format!("{}\n", line.render()).as_bytes());
                        continue; // Answered in-band, then dropped.
                    }
                    Err(_) => {
                        shared.accept_faults.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                let Ok(read_half) = stream.try_clone() else {
                    continue; // Connection already unusable.
                };
                let conn = Arc::new(Conn {
                    writer: Mutex::new(stream),
                    inflight: AtomicUsize::new(0),
                });
                let senders = senders.clone();
                let config = &self.config;
                conn_handles.push(
                    scope.spawn(move || read_connection(read_half, conn, senders, shared, config)),
                );
            }
            // Drain: connected clients run to EOF, then the queues close
            // (every sender clone dropped) and the shards exit.
            for handle in conn_handles {
                let _ = handle.join();
            }
            drop(senders);
            Ok(())
        })?;

        if let Listen::Unix(path) = &self.resolved {
            let _ = std::fs::remove_file(path);
        }
        let router_stats = shared.router.stats();
        Ok(NetSummary {
            connections: shared.connections.load(Ordering::Relaxed),
            requests: shared.responses.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
            sessions_opened: router_stats.sessions_opened,
            panics: router_stats.panics,
            quarantined: router_stats.quarantined,
            recoveries: router_stats.recoveries,
            snapshots: router_stats.snapshots,
            shed: shared.shed.load(Ordering::Relaxed),
            quota_rejections: shared.quota_rejections.load(Ordering::Relaxed),
            shards_respawned: shared.respawned.load(Ordering::Relaxed),
            accept_faults: shared.accept_faults.load(Ordering::Relaxed),
        })
    }
}

/// Writes one response line to its connection, counting it. Write errors
/// only mean the client went away; the server never cares.
fn write_response(shared: &NetShared, conn: &Conn, response: Json) {
    shared.responses.fetch_add(1, Ordering::Relaxed);
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    let mut writer = lock_recover(&conn.writer);
    let mut line = response.render();
    line.push('\n'); // One write: the line must leave as a single segment.
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.flush();
}

/// One connection's intake loop: parse, validate/route, enforce
/// per-connection quotas, dispatch to the session's shard. Runs until
/// client EOF (or a transport error), which ends the connection.
fn read_connection(
    stream: Stream,
    conn: Arc<Conn>,
    senders: Vec<SyncSender<ShardJob>>,
    shared: &NetShared,
    config: &NetConfig,
) {
    // Sessions this connection holds against `max_sessions_per_conn`,
    // accounted at dispatch: an `open` claims the slot (even if the
    // design later fails to parse — admission control is deliberately
    // pessimistic), a `close` frees it.
    let mut held: HashSet<String> = HashSet::new();
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                write_response(
                    shared,
                    &conn,
                    error_response(Json::Null, format!("malformed request: {e}")),
                );
                continue;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let slot = match shared.router.route(&id, &request) {
            Ok(slot) => slot,
            Err(response) => {
                write_response(shared, &conn, response);
                continue;
            }
        };
        // Quotas apply after validation so they only reject requests
        // that would otherwise consume shard capacity.
        if let Some(max) = config.max_inflight_per_conn {
            if conn.inflight.load(Ordering::Acquire) >= max {
                shared.quota_rejections.fetch_add(1, Ordering::Relaxed);
                write_response(
                    shared,
                    &conn,
                    error_response(
                        id,
                        format!(
                            "quota exceeded: {max} request(s) already in flight on this connection"
                        ),
                    ),
                );
                continue;
            }
        }
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        let session = request.get("session").and_then(Json::as_str);
        if op == "open" {
            if let (Some(max), Some(name)) = (config.max_sessions_per_conn, session) {
                if !held.contains(name) && held.len() >= max {
                    shared.quota_rejections.fetch_add(1, Ordering::Relaxed);
                    write_response(
                        shared,
                        &conn,
                        error_response(
                            id,
                            format!("quota exceeded: connection already holds {max} session(s)"),
                        ),
                    );
                    continue;
                }
            }
            if let Some(name) = session {
                held.insert(name.to_owned());
            }
        } else if op == "close" {
            if let Some(name) = session {
                held.remove(name);
            }
        }
        let deadline = request
            .get("deadline_ms")
            .and_then(Json::as_i64)
            .map(|ms| Duration::from_millis(ms.max(0) as u64))
            .or(config.engine.deadline);
        conn.inflight.fetch_add(1, Ordering::AcqRel);
        let job = ShardJob {
            id,
            request,
            accepted: Instant::now(),
            deadline,
            conn: Arc::clone(&conn),
        };
        match senders[slot].try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
                write_response(shared, &job.conn, overloaded_response(job.id));
            }
            // Possible only if a shard's supervisor itself died — answer
            // in-band rather than hanging the client.
            Err(TrySendError::Disconnected(job)) => {
                job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
                write_response(
                    shared,
                    &job.conn,
                    error_response(job.id, "shard queue disconnected"),
                );
            }
        }
    }
}

/// Keeps one shard slot staffed: a worker that dies outright (an
/// injected `serve::worker_kill`, or an organic bug outside the
/// per-request catch) is replaced on the same queue — sessions and
/// queued jobs live in `shared`, so nothing is lost or reordered.
fn supervise_shard(slot: usize, shared: &NetShared) {
    loop {
        if catch_unwind(AssertUnwindSafe(|| shard_worker(slot, shared))).is_ok() {
            return; // Clean exit: queue closed.
        }
        shared.respawned.fetch_add(1, Ordering::Relaxed);
    }
}

/// A shard's serving loop — the socket twin of the stdio worker: recv,
/// execute, answer, batch-drain, then group-commit the batch's WAL
/// lines with one sync per journal.
fn shard_worker(slot: usize, shared: &NetShared) {
    let _scope = shared.fault_scope.map(failpoint::enter_scope);
    loop {
        // Kill site, evaluated with no job in hand and no lock held.
        let _ = failpoint!("serve::worker_kill");
        let job = {
            let rx = lock_recover(&shared.receivers[slot]);
            rx.recv()
        };
        let Ok(job) = job else {
            shared.router.sync_journals(slot);
            return;
        };
        process(slot, shared, job);
        loop {
            let _ = failpoint!("serve::worker_kill");
            let job = {
                let rx = lock_recover(&shared.receivers[slot]);
                rx.try_recv()
            };
            let Ok(job) = job else { break };
            process(slot, shared, job);
        }
        shared.router.sync_journals(slot);
    }
}

/// Executes one job, honoring its deadline, and answers its connection.
/// Inflight is released before the write so a closed-loop client's next
/// request never races its own quota.
fn process(slot: usize, shared: &NetShared, job: ShardJob) {
    let expired = job.deadline.is_some_and(|d| job.accepted.elapsed() > d);
    let response = if expired {
        error_response(job.id, DEADLINE_ERROR)
    } else {
        shared.router.execute(slot, job.id, &job.request)
    };
    job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
    write_response(shared, &job.conn, response);
}
